// Chaos scenarios: fault injection on the virtual clock with assertions on
// the metrics plane itself — the counters and histograms must tell the same
// story the apps see, or the observability stack is lying.
package scenario

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/core"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
)

// repairedTotal sums the repair retransmit counters across all nodes.
func (c *cluster) repairedTotal() int64 {
	var total int64
	for _, reg := range c.regs {
		total += reg.CounterVec("gossip_retransmits_total", "protocol").With("repair").Value()
	}
	return total
}

// duplicatesTotal sums the duplicate-suppression counters across all nodes.
func (c *cluster) duplicatesTotal() int64 {
	var total int64
	for _, reg := range c.regs {
		total += reg.Counter("gossip_duplicates_total").Value()
	}
	return total
}

// TestChaosHealingPartition splits a pushing cluster in half mid-interaction
// and heals it. The metrics must trace the incident: repair retransmits
// spike only after the heal (they are what closes the gap), and once
// coverage is complete both the repair and duplicate counters go quiescent.
func TestChaosHealingPartition(t *testing.T) {
	const n = 32
	c := newCluster(t, clusterConfig{
		n: n, seed: 131,
		repairEvery: 200 * time.Millisecond,
	})
	ctx := context.Background()

	inter, err := c.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Event 1 pre-partition: every node registers the interaction.
	if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if w := advanceUntil(c.clk, 200*time.Millisecond, 20, func() bool {
		return c.coverage(nil, 1) == n
	}); w > 20 {
		t.Fatalf("pre-partition event covered %d/%d", c.coverage(nil, 1), n)
	}

	// Partition: nodes 0..15 plus the (unstamped) initiator on side A,
	// nodes 16..31 on side B. The control plane stays connected.
	side := func(addr string) int {
		for _, a := range c.addrs[n/2:] {
			if a == addr {
				return 1
			}
		}
		return 0
	}
	c.bus.SetPartition(func(from, to string) bool { return side(from) != side(to) })

	if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	// Coverage stalls: side B is unreachable, and even inside side A a node
	// whose static target list points across the cut cannot initiate its own
	// repair. Whatever level the stall settles at, it must hold there.
	for w := 0; w < 10; w++ {
		c.clk.Advance(200 * time.Millisecond)
	}
	stalled := c.coverage(nil, 2)
	if stalled == 0 || stalled >= n {
		t.Fatalf("partitioned coverage = %d, want a partial stall below %d", stalled, n)
	}
	repairedBeforeHeal := c.repairedTotal()
	for w := 0; w < 5; w++ {
		c.clk.Advance(200 * time.Millisecond)
	}
	if got := c.coverage(nil, 2); got != stalled {
		t.Fatalf("coverage moved %d -> %d during partition", stalled, got)
	}

	// Heal. Cross-side repair digests now land and retransmits close the
	// other half within the repair budget.
	c.bus.SetPartition(nil)
	if w := advanceUntil(c.clk, 200*time.Millisecond, 30, func() bool {
		return c.coverage(nil, 2) == n
	}); w > 30 {
		t.Fatalf("heal left coverage at %d/%d after budget", c.coverage(nil, 2), n)
	}
	repairedAfterHeal := c.repairedTotal()
	if repairedAfterHeal <= repairedBeforeHeal {
		t.Fatalf("repair counters did not spike across the heal: %d -> %d",
			repairedBeforeHeal, repairedAfterHeal)
	}
	// Healed and converged: the spike must subside. Repair rounds keep
	// exchanging digests, but nothing is missing anymore, so retransmit and
	// duplicate counters freeze.
	dupSettled := c.duplicatesTotal()
	repairSettled := c.repairedTotal()
	for w := 0; w < 5; w++ {
		c.clk.Advance(200 * time.Millisecond)
	}
	if got := c.repairedTotal(); got != repairSettled {
		t.Fatalf("repair retransmits still growing after convergence: %d -> %d", repairSettled, got)
	}
	if got := c.duplicatesTotal(); got != dupSettled {
		t.Fatalf("duplicates still growing after convergence: %d -> %d", dupSettled, got)
	}
	t.Logf("healing partition: %d repairs during partition, %d after heal",
		repairedBeforeHeal, repairedAfterHeal-repairedBeforeHeal)
}

// skewClock wraps a virtual clock so every Now() reading slides forward by
// step: between the runner's two Now() calls around a Tick exactly one step
// elapses, giving that node a deterministic nonzero tick duration while
// timers still fire on the shared virtual timeline.
type skewClock struct {
	inner clock.Clock
	step  time.Duration

	mu    sync.Mutex
	calls int64
}

func (s *skewClock) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	return s.inner.Now() + time.Duration(s.calls)*s.step
}

func (s *skewClock) AfterFunc(d time.Duration, fn func()) (stop func() bool) {
	return s.inner.AfterFunc(d, fn)
}

func (s *skewClock) After(d time.Duration) <-chan time.Duration { return s.inner.After(d) }

func (s *skewClock) NewTicker(d time.Duration) clock.Ticker { return s.inner.NewTicker(d) }

// TestChaosStraggler gives one node pull-round ticks that appear to take
// 50ms (the healthy nodes' ticks are instantaneous on the virtual clock).
// The tick-duration histogram must expose the straggler's tail, and the
// epidemic must still reach full coverage within the usual pull budget.
func TestChaosStraggler(t *testing.T) {
	const (
		n         = 24
		straggler = 0
		step      = 50 * time.Millisecond
	)
	c := newCluster(t, clusterConfig{
		n: n, seed: 150,
		pullEvery: 100 * time.Millisecond,
		nodeClock: func(i int, shared *clock.Virtual) clock.Clock {
			if i == straggler {
				return &skewClock{inner: shared, step: step}
			}
			return nil
		},
	})
	ctx := context.Background()

	inter, err := c.init.StartProtocolInteraction(ctx, core.ProtocolPullGossip)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	for _, d := range c.dissems {
		if err := d.JoinInteraction(ctx, inter.Context, core.ProtocolPullGossip); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 40
	if w := advanceUntil(c.clk, 100*time.Millisecond, budget, func() bool {
		return c.coverage(nil, 1) == n
	}); w > budget {
		t.Fatalf("straggler held coverage to %d/%d past the budget", c.coverage(nil, 1), n)
	}

	tickHist := func(i int) *metrics.BucketHistogram {
		return c.regs[i].BucketHistogramVec("runner_tick_seconds", metrics.DefLatencyBuckets, "loop").With("pull")
	}
	slow := tickHist(straggler)
	if slow.Count() == 0 {
		t.Fatal("straggler never ticked")
	}
	// Every straggler tick contributes exactly one step.
	wantSum := float64(slow.Count()) * step.Seconds()
	if got := slow.Sum(); got < wantSum-1e-9 || got > wantSum+1e-9 {
		t.Fatalf("straggler tick-duration sum = %v, want %v", got, wantSum)
	}
	if max := slow.Max(); max < step.Seconds() {
		t.Fatalf("straggler tick-duration max = %v, tail invisible (step %v)", max, step.Seconds())
	}
	for i := 1; i < n; i++ {
		h := tickHist(i)
		if h.Count() == 0 {
			t.Fatalf("healthy node %d never ticked", i)
		}
		if h.Sum() != 0 {
			t.Fatalf("healthy node %d shows nonzero tick durations: %v", i, h.Sum())
		}
	}
	t.Logf("straggler: %d ticks, sum %.3fs, max bucket %.4fs; %d healthy nodes all at 0s",
		slow.Count(), slow.Sum(), slow.Max(), n-1)
}

// captureHandler tees one node's SOAP traffic, keeping the first
// notification envelope it sees so the rogue can replay it verbatim.
type captureHandler struct {
	inner soap.Handler

	mu   sync.Mutex
	data []byte
}

func (h *captureHandler) HandleSOAP(ctx context.Context, req *soap.Request) (*soap.Envelope, error) {
	if req.Addressing().Action == core.ActionNotify {
		if data, err := req.Envelope.Encode(); err == nil {
			h.mu.Lock()
			if h.data == nil {
				h.data = data
			}
			h.mu.Unlock()
		}
	}
	return h.inner.HandleSOAP(ctx, req)
}

func (h *captureHandler) captured() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.data
}

// TestChaosDuplicateReplayer has a misbehaving sender replay one captured
// notification envelope at a single victim, dozens of times. The victim's
// duplicate counter — and only the victim's — must account for every
// replay, and no application sees a second delivery.
func TestChaosDuplicateReplayer(t *testing.T) {
	const (
		n       = 24
		replays = 50
		victim  = 7
	)
	// Generous fanout/hops so the eager push alone covers every node —
	// repair stays quiet and cannot be mistaken for the rogue's replays.
	c := newCluster(t, clusterConfig{
		n: n, seed: 150,
		fanout: 4, hops: 12,
		repairEvery: 200 * time.Millisecond,
	})
	ctx := context.Background()

	// Tee node 3's handler to capture a forwarded notification verbatim.
	tap := &captureHandler{inner: c.dissems[3].Handler()}
	c.bus.Register(c.addrs[3], tap)

	inter, err := c.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if w := advanceUntil(c.clk, 100*time.Millisecond, 20, func() bool {
		return c.coverage(nil, 1) == n
	}); w > 20 {
		t.Fatalf("event covered %d/%d", c.coverage(nil, 1), n)
	}
	data := tap.captured()
	if data == nil {
		t.Fatal("tap captured no notification")
	}

	dupBefore := make([]int64, n)
	for i, reg := range c.regs {
		dupBefore[i] = reg.Counter("gossip_duplicates_total").Value()
	}

	// The rogue replays the same envelope (same wsa MessageID) at the
	// victim over and over.
	for r := 0; r < replays; r++ {
		if err := c.bus.SendEncoded(ctx, c.addrs[victim], data); err != nil {
			t.Fatal(err)
		}
	}
	c.clk.Advance(100 * time.Millisecond)

	for i, reg := range c.regs {
		delta := reg.Counter("gossip_duplicates_total").Value() - dupBefore[i]
		switch i {
		case victim:
			if delta != replays {
				t.Fatalf("victim duplicate delta = %d, want %d", delta, replays)
			}
		default:
			if delta != 0 {
				t.Fatalf("node %d duplicate delta = %d, want 0 — replay was not isolated", i, delta)
			}
		}
	}
	// Duplicate suppression held: every app still saw the event exactly once.
	for i, app := range c.apps {
		if app.Count() != 1 {
			t.Fatalf("node %d delivered %d copies, want exactly 1", i, app.Count())
		}
	}
	// The victim's scrape shows the incident.
	var sb strings.Builder
	if err := c.regs[victim].WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gossip_duplicates_total") {
		t.Fatal("victim exposition missing the duplicate counter")
	}
	t.Logf("replayer: %d replays at node %d all counted as duplicates, zero re-deliveries", replays, victim)
}
