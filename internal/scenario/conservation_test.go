// Property-based conservation contract for the epoch-windowed, acked
// push-sum exchange: under ARBITRARY generated schedules of link loss,
// cuts, partitions, crashes, recoveries, and joins, no node's mass-error
// residual may ever leave zero — the pairwise-atomic share (commit on ack,
// reclaim on synchronous refusal, retire at epoch boundaries) makes the
// conservation ledger balance at every observable instant, not just at
// quiescence. The generated plans are seeded and deterministic; failures
// print the full schedule so a counterexample can be shrunk by hand and
// committed below as a regression.
package scenario

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/faults"
	"wsgossip/internal/gossip"
	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

// faultOp is one scheduled fault action, applied just before tick `step`.
type faultOp struct {
	step int
	kind string // loss, linkloss, cut, partition, healall, crash, recover, join
	a, b string
	rate float64
	grp  []string
}

func (op faultOp) String() string {
	return fmt.Sprintf("{step:%d %s a:%q b:%q rate:%g grp:%v}", op.step, op.kind, op.a, op.b, op.rate, op.grp)
}

// conservationPlan is one full property-test case: a cluster shape plus a
// fault schedule.
type conservationPlan struct {
	name   string
	seed   int64
	nodes  int // initial live nodes (indices [0,nodes))
	late   int // extra pre-crashed nodes that "join" via recover ops
	steps  int // faulty phase length, in ticks
	window time.Duration
	ops    []faultOp
}

const (
	consTick = 20 * time.Millisecond
	// consEps is the relative tolerance for end-of-run estimate and global
	// weight checks. Mass-error residuals use no tolerance at all: the
	// ledger snaps float dust to exactly zero, and the property is that it
	// never reads anything else.
	consEps = 1e-2
)

// aggCluster is a simulated cluster of windowed push-sum nodes running a
// continuous count query ("how many nodes are alive?") with node 0 as the
// anchor root.
type aggCluster struct {
	t     *testing.T
	net   *simnet.Network
	tbl   *faults.Table
	addrs []string
	nodes []*aggregate.SimNode
	down  map[string]bool
}

func consAddr(i int) string { return fmt.Sprintf("agg%03d", i) }

func newAggCluster(t *testing.T, seed int64, nodes, late int, window time.Duration) *aggCluster {
	t.Helper()
	total := nodes + late
	c := &aggCluster{
		t:     t,
		net:   simnet.New(simnet.DefaultConfig(seed)),
		tbl:   faults.NewTable(),
		addrs: make([]string, total),
		nodes: make([]*aggregate.SimNode, total),
		down:  make(map[string]bool),
	}
	c.net.SetFaults(c.tbl)
	for i := range c.addrs {
		c.addrs[i] = consAddr(i)
	}
	peers := gossip.NewStaticPeers(c.addrs)
	for i, addr := range c.addrs {
		node, err := aggregate.NewSimNode(aggregate.SimNodeConfig{
			Endpoint: c.net.Node(addr),
			Peers:    peers,
			Fanout:   2,
			TaskID:   "conserve",
			Func:     aggregate.FuncCount,
			Value:    1,
			Root:     i == 0,
			RNG:      rand.New(rand.NewSource(seed*7907 + int64(i))),
			Window:   window,
			Clock:    c.net,
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := transport.NewMux()
		node.Register(mux)
		mux.Bind(c.net.Node(addr))
		c.nodes[i] = node
	}
	// Late joiners start crashed: they exist on the network (their inbound
	// deliveries drop) but neither tick nor contribute until a join op.
	for i := nodes; i < total; i++ {
		c.net.Crash(c.addrs[i])
		c.down[c.addrs[i]] = true
	}
	return c
}

// tick advances one round: deliver everything due, then run one push-sum
// round on every live node in index order (determinism).
func (c *aggCluster) tick(ctx context.Context) {
	c.net.RunFor(consTick)
	for i, node := range c.nodes {
		if c.down[c.addrs[i]] {
			continue
		}
		node.Tick(ctx)
	}
}

// checkMass asserts the conservation contract on every live node. The
// residual must be exactly zero — not small, zero: the ledger cancels
// commit and recovery terms exactly and snaps sub-tolerance float dust.
func (c *aggCluster) checkMass(stage string, plan *conservationPlan) {
	c.t.Helper()
	for i, node := range c.nodes {
		if c.down[c.addrs[i]] {
			continue
		}
		if e := node.MassError(); e != 0 {
			c.t.Fatalf("%s: node %s mass error = %g, want exactly 0\nepoch=%d outstanding=%g contributed=%g stats=%+v\nplan: %+v",
				stage, c.addrs[i], e, node.Epoch(), node.Outstanding(), node.Contributed(), node.SimStats(), plan)
		}
	}
}

// apply executes one fault op against the network and table.
func (c *aggCluster) apply(op faultOp) {
	switch op.kind {
	case "loss":
		c.tbl.SetLoss(op.rate)
	case "linkloss":
		c.tbl.LinkLoss("op-linkloss", []string{op.a}, []string{op.b}, op.rate)
	case "cut":
		c.tbl.CutBoth("op-cut", []string{op.a}, []string{op.b})
	case "partition":
		c.tbl.Partition("op-partition", op.grp)
	case "healall":
		c.tbl.HealAll()
	case "crash":
		if !c.down[op.a] {
			c.net.Crash(op.a)
			c.down[op.a] = true
		}
	case "recover", "join":
		if c.down[op.a] {
			c.net.Recover(op.a)
			c.down[op.a] = false
		}
	default:
		c.t.Fatalf("unknown fault op kind %q", op.kind)
	}
}

// runConservation drives one plan: the faulty phase with per-tick mass
// checks, then a healed quiescent phase that must restore global
// conservation and a correct count estimate.
func runConservation(t *testing.T, plan conservationPlan) {
	c := newAggCluster(t, plan.seed, plan.nodes, plan.late, plan.window)
	ctx := context.Background()

	byStep := make(map[int][]faultOp)
	for _, op := range plan.ops {
		byStep[op.step] = append(byStep[op.step], op)
	}
	for step := 0; step < plan.steps; step++ {
		for _, op := range byStep[step] {
			c.apply(op)
		}
		c.tick(ctx)
		// The heart of the property: conservation holds mid-chaos at every
		// observable instant, on every live node.
		c.checkMass(fmt.Sprintf("step %d", step), &plan)
	}

	// Heal everything and recover every node, then cross into a fresh epoch
	// so all nodes restart from clean contributions.
	c.tbl.HealAll()
	for _, addr := range c.addrs {
		if c.down[addr] {
			c.net.Recover(addr)
			c.down[addr] = false
		}
	}
	now := c.net.Now()
	nextBoundary := now.Truncate(plan.window) + plan.window
	c.net.RunFor(nextBoundary - now)

	// One clean window of rounds, checking mass throughout.
	cleanRounds := int(plan.window/consTick) - 1
	for step := 0; step < cleanRounds; step++ {
		c.tick(ctx)
		c.checkMass(fmt.Sprintf("clean round %d", step), &plan)
	}
	// Drain all in-flight shares and acks. With no faults every share lands
	// and every ack commits, so nothing stays outstanding.
	c.net.Run()
	c.checkMass("after drain", &plan)

	total := plan.nodes + plan.late
	epoch := c.nodes[0].Epoch()
	var heldWeight, contributed float64
	for i, node := range c.nodes {
		if got := node.Epoch(); got != epoch {
			t.Fatalf("node %s in epoch %d, node %s in epoch %d after clean window\nplan: %+v",
				c.addrs[i], got, c.addrs[0], epoch, plan)
		}
		if out := node.Outstanding(); out != 0 {
			t.Fatalf("node %s still has outstanding weight %g after no-fault drain\nplan: %+v",
				c.addrs[i], out, plan)
		}
		_, w := node.State().Mass()
		heldWeight += w
		contributed += node.Contributed()
	}
	// Global conservation at quiescence: with zero faults in the live epoch
	// and nothing outstanding, held weight equals injected weight.
	if diff := math.Abs(heldWeight - contributed); diff > consEps*math.Max(1, contributed) {
		t.Fatalf("global weight leak: held %g vs contributed %g (diff %g)\nplan: %+v",
			heldWeight, contributed, diff, plan)
	}
	// And the continuous count query tracks the (fully recovered) truth.
	est, ok := c.nodes[0].State().Estimate()
	if !ok {
		t.Fatalf("root has no estimate after clean window\nplan: %+v", plan)
	}
	if rel := math.Abs(est-float64(total)) / float64(total); rel > consEps {
		t.Fatalf("root count estimate %g, want %d within %g\nplan: %+v", est, total, consEps, plan)
	}
}

// genPlan builds a seeded random fault schedule. Everything derives from
// the seed, so a failing plan reproduces from its subtest name alone.
func genPlan(seed int64) conservationPlan {
	rng := rand.New(rand.NewSource(seed))
	plan := conservationPlan{
		name:   fmt.Sprintf("gen-%d", seed),
		seed:   seed,
		nodes:  8 + rng.Intn(5),
		late:   1 + rng.Intn(2),
		steps:  60,
		window: 400 * time.Millisecond,
	}
	pick := func(lo, hi int) string { return consAddr(lo + rng.Intn(hi-lo)) }
	// Never crash the anchor root: a count query with no anchor has nothing
	// to converge to (weight stays zero everywhere). The conservation
	// property itself would still hold, but the end-of-run estimate check
	// needs a live root.
	pickVictim := func() string { return pick(1, plan.nodes) }
	crashed := 0
	for step := 2; step < plan.steps-10; step += 1 + rng.Intn(6) {
		var op faultOp
		switch k := rng.Intn(8); k {
		case 0:
			op = faultOp{kind: "loss", rate: 0.05 + 0.25*rng.Float64()}
		case 1:
			op = faultOp{kind: "linkloss", a: pick(0, plan.nodes), b: pick(0, plan.nodes), rate: 0.5}
		case 2:
			op = faultOp{kind: "cut", a: pickVictim(), b: pickVictim()}
		case 3:
			grp := []string{pick(1, plan.nodes), pickVictim(), pickVictim()}
			op = faultOp{kind: "partition", grp: grp}
		case 4:
			op = faultOp{kind: "healall"}
		case 5:
			// Bound concurrent crashes so the cluster keeps a majority.
			if crashed >= plan.nodes/3 {
				op = faultOp{kind: "healall"}
			} else {
				crashed++
				op = faultOp{kind: "crash", a: pickVictim()}
			}
		case 6:
			if crashed > 0 {
				crashed--
			}
			op = faultOp{kind: "recover", a: pickVictim()}
		case 7:
			op = faultOp{kind: "join", a: consAddr(plan.nodes + rng.Intn(plan.late))}
		}
		op.step = step
		plan.ops = append(plan.ops, op)
	}
	return plan
}

// TestConservationProperty is the generated-schedule sweep. Each subtest is
// one seeded plan; the seeds are fixed so the sweep is deterministic under
// -count=N and -race.
func TestConservationProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		plan := genPlan(seed)
		t.Run(plan.name, func(t *testing.T) {
			runConservation(t, plan)
		})
	}
}

// TestConservationRegressions pins hand-shrunk schedules around the
// trickiest interleavings of the acked exchange — the cases the generated
// sweep only hits by luck. Each is minimal: remove any op and the schedule
// no longer exercises its path.
func TestConservationRegressions(t *testing.T) {
	window := 400 * time.Millisecond
	plans := []conservationPlan{
		{
			// A receiver crashes while shares to it are in flight and its
			// acks are lost; the sender must carry the outstanding weight
			// across the epoch boundary and retire it without ever showing a
			// residual. Recovery after the boundary then lands stale shares
			// (retired epoch) that are acked but not absorbed.
			name: "crash-holding-inflight-mass", seed: 101, nodes: 6, late: 0, steps: 50, window: window,
			ops: []faultOp{
				{step: 5, kind: "crash", a: consAddr(3)},
				{step: 35, kind: "recover", a: consAddr(3)},
			},
		},
		{
			// A symmetric cut makes first sends fail *silently* (fault drop,
			// not refusal), so the sender may not reclaim mass mid-epoch —
			// it must keep retrying, suspect the target, and retire the
			// share only at the boundary.
			name: "cut-forbids-midepoch-recovery", seed: 102, nodes: 6, late: 0, steps: 50, window: window,
			ops: []faultOp{
				{step: 3, kind: "cut", a: consAddr(1), b: consAddr(2)},
				{step: 30, kind: "healall"},
			},
		},
		{
			// Heavy global loss across an epoch boundary: retries, duplicate
			// deliveries, and stale acks all interleave. Dedup must keep
			// double-absorption out of the ledger.
			name: "global-loss-across-boundary", seed: 103, nodes: 8, late: 1, steps: 50, window: window,
			ops: []faultOp{
				{step: 2, kind: "loss", rate: 0.3},
				{step: 24, kind: "join", a: consAddr(8)},
				{step: 40, kind: "healall"},
			},
		},
	}
	for _, plan := range plans {
		t.Run(plan.name, func(t *testing.T) {
			runConservation(t, plan)
		})
	}
}
