// Delivery-plane chaos scenarios: the failure-aware outbound plane under
// flapping links, a saturated receiver, and misbehaving envelopes — all on
// the virtual clock, all asserting that the delivery_* and shed_* metric
// families account for every injected fault exactly.
package scenario

import (
	"context"
	"testing"
	"time"

	"wsgossip/internal/core"
	"wsgossip/internal/delivery"
	"wsgossip/internal/epidemic"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
)

// sumCounter totals one plain counter across every node registry plus the
// initiator's.
func (c *cluster) sumCounter(name string) int64 {
	total := c.initReg.Counter(name).Value()
	for _, reg := range c.regs {
		total += reg.Counter(name).Value()
	}
	return total
}

// sumLabeled totals one labeled counter across every node registry plus
// the initiator's.
func (c *cluster) sumLabeled(name, label, value string) int64 {
	total := c.initReg.CounterVec(name, label).With(value).Value()
	for _, reg := range c.regs {
		total += reg.CounterVec(name, label).With(value).Value()
	}
	return total
}

// sumGauge totals one gauge across every node registry plus the initiator's.
func (c *cluster) sumGauge(name string) int64 {
	total := c.initReg.Gauge(name).Value()
	for _, reg := range c.regs {
		total += reg.Gauge(name).Value()
	}
	return total
}

// queuedTotal sums the outbound backlog across every delivery plane.
func (c *cluster) queuedTotal() int {
	total := 0
	for _, p := range c.planes {
		if p != nil {
			total += p.Stats().Queued
		}
	}
	if c.initPlane != nil {
		total += c.initPlane.Stats().Queued
	}
	return total
}

// TestChaosFlappingLink refuses every one-way send to one node for a
// stretch: sender planes retry, exhaust per-message budgets, and open the
// victim's circuit. The transport-failure counters must equal the bus's
// refused count exactly. After the link heals, half-open probes riding
// ordinary repair traffic close every opened circuit and anti-entropy
// completes the victim's coverage.
func TestChaosFlappingLink(t *testing.T) {
	const (
		n      = 24
		victim = 5
	)
	c := newCluster(t, clusterConfig{
		n: n, seed: 211,
		repairEvery: 200 * time.Millisecond,
		plane: func(i int) *delivery.Config {
			return &delivery.Config{
				MaxAttempts:      3,
				AttemptTimeout:   time.Second,
				BackoffBase:      50 * time.Millisecond,
				BackoffMax:       200 * time.Millisecond,
				BreakerThreshold: 3,
				BreakerCooldown:  400 * time.Millisecond,
			}
		},
	})
	ctx := context.Background()

	inter, err := c.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Event 1 on a healthy overlay: the planes must be transparent.
	if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if w := advanceUntil(c.clk, 200*time.Millisecond, 20, func() bool {
		return c.coverage(nil, 1) == n
	}); w > 20 {
		t.Fatalf("healthy-overlay event covered %d/%d", c.coverage(nil, 1), n)
	}
	if got := c.sumLabeled("delivery_attempt_failures_total", "kind", "transport"); got != 0 {
		t.Fatalf("healthy overlay shows %d transport failures", got)
	}

	// The victim's inbound link starts refusing connections.
	victimAddr := c.addrs[victim]
	c.bus.SetRefuse(func(_, to string) bool { return to == victimAddr })
	if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	others := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		others[i] = i != victim
	}
	if w := advanceUntil(c.clk, 200*time.Millisecond, 20, func() bool {
		return c.coverage(others, 2) == n-1
	}); w > 20 {
		t.Fatalf("event 2 covered %d/%d live nodes during the flap", c.coverage(others, 2), n-1)
	}
	if c.apps[victim].Count() >= 2 {
		t.Fatal("victim received event 2 through a refused link")
	}
	// Every attempt that reached the wire was refused; the planes' transport
	// failure counters must tell exactly that story — no more, no less.
	if fails, refused := c.sumLabeled("delivery_attempt_failures_total", "kind", "transport"), int64(c.bus.Refused()); fails != refused {
		t.Fatalf("transport failures %d != refused sends %d", fails, refused)
	}
	opened := c.sumLabeled("delivery_breaker_transitions_total", "to", "open")
	if opened == 0 {
		t.Fatal("sustained refusal opened no circuit")
	}
	if open := c.sumGauge("delivery_breaker_open"); open == 0 {
		t.Fatal("no circuit currently open at the height of the flap")
	}

	// Heal. Repair digests reach the victim again and anti-entropy delivers
	// the missed event.
	c.bus.SetRefuse(nil)
	if w := advanceUntil(c.clk, 200*time.Millisecond, 40, func() bool {
		return c.coverage(nil, 2) == n
	}); w > 40 {
		t.Fatalf("after heal: event 2 covered %d/%d", c.coverage(nil, 2), n)
	}
	// Probes ride real traffic, and the initiator only generates traffic
	// when asked — a third event gives every tripped plane (the periodic
	// repair senders and the one-shot initiator alike) something to probe
	// the victim with, so every circuit re-closes.
	if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	if w := advanceUntil(c.clk, 200*time.Millisecond, 60, func() bool {
		return c.coverage(nil, 3) == n && c.sumGauge("delivery_breaker_open") == 0
	}); w > 60 {
		t.Fatalf("after heal: coverage %d/%d, %d circuits still open",
			c.coverage(nil, 3), n, c.sumGauge("delivery_breaker_open"))
	}
	closed := c.sumLabeled("delivery_breaker_transitions_total", "to", "closed")
	openedNow := c.sumLabeled("delivery_breaker_transitions_total", "to", "open")
	if closed != openedNow {
		t.Fatalf("breaker transitions unbalanced after recovery: %d opens, %d closes", openedNow, closed)
	}
	// Refusal must not have counted as receiver overload anywhere.
	if got := c.sumCounter("delivery_deferrals_total"); got != 0 {
		t.Fatalf("connection refusal produced %d retry-after deferrals", got)
	}
	t.Logf("flapping link: %d refused sends, %d circuits opened and all re-closed, victim repaired",
		c.bus.Refused(), openedNow)
}

// TestChaosSaturatedReceiver is the overload contract end to end: one
// receiver admits one notification per 100ms and sheds the rest with
// retry-after hints; every sender routes through a delivery plane that
// honors the hint. The epidemic must still close within the analytic
// budget plus the shed-pacing tail, no message may be retried past its
// budget, and the shed/deferral/retry counters must agree exactly.
func TestChaosSaturatedReceiver(t *testing.T) {
	const (
		n      = 24
		victim = 7
	)
	planeCfg := func(int) *delivery.Config {
		return &delivery.Config{
			// Generous attempt budget: the point of this scenario is that
			// pacing, not dropping, absorbs the overload.
			MaxAttempts:    64,
			AttemptTimeout: time.Second,
		}
	}
	// Generous fanout concentrates senders on the victim; repair runs, but
	// slowly: pacing by the planes — not anti-entropy — is what must absorb
	// the overload within the budget.
	c := newCluster(t, clusterConfig{n: n, seed: 223, plane: planeCfg,
		fanout: 6, hops: 8,
		repairEvery: 500 * time.Millisecond})
	ctx := context.Background()

	// Synchronous bus: a shed fault comes back on the send, as over HTTP.
	c.bus.SetSync(true)

	// The victim sheds data-plane notifications beyond 10/s (burst 1); the
	// control plane and repair stay exempt — overload must not eject the
	// node from coordination.
	gate := delivery.NewGate(delivery.GateConfig{
		Clock:   c.clk,
		Rate:    10,
		Burst:   1,
		Metrics: c.regs[victim],
		Exempt:  func(action string) bool { return action != core.ActionNotify },
	})
	c.bus.Register(c.addrs[victim], soap.Chain(c.dissems[victim].Handler(), gate.Middleware()))

	inter, err := c.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Every node registers the interaction up front so anti-entropy can
	// backstop any edge the eager push lost to hop exhaustion — the victim
	// forwards admitted copies late, possibly with no hop budget left.
	for _, d := range c.dissems {
		if err := d.JoinInteraction(ctx, inter.Context, core.ProtocolPushGossip); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
		t.Fatal(err)
	}

	// Budget: the analytic push rounds (instant on the synchronous bus)
	// plus one 100ms admission window per message the victim must absorb —
	// at most one queued notification per sending plane.
	analytic, err := epidemic.RoundsForCoverage(n, inter.Params.Fanout, 0.99, 100)
	if err != nil {
		t.Fatal(err)
	}
	budget := analytic + n + 4
	windows := advanceUntil(c.clk, 100*time.Millisecond, budget, func() bool {
		return c.coverage(nil, 1) == n && c.queuedTotal() == 0
	})
	if windows > budget {
		t.Fatalf("saturated receiver: coverage %d/%d, %d still queued after %d windows",
			c.coverage(nil, 1), n, c.queuedTotal(), budget)
	}

	// Exact fault accounting. Every shed the gate issued was seen by some
	// plane as a deferral, and every deferral was resolved by exactly one
	// retry (the queues are drained, and nothing hit its attempt budget).
	shed := c.regs[victim].Counter("delivery_shed_total").Value()
	if shed == 0 {
		t.Fatal("the victim never shed — the scenario exerted no overload")
	}
	deferrals := c.sumCounter("delivery_deferrals_total")
	retries := c.sumCounter("delivery_retries_total")
	if deferrals != shed || retries != shed {
		t.Fatalf("overload accounting broken: shed=%d deferrals=%d retries=%d", shed, deferrals, retries)
	}
	if got := c.sumLabeled("delivery_drops_total", "reason", "budget"); got != 0 {
		t.Fatalf("%d messages retried past their budget", got)
	}
	if got := c.sumLabeled("delivery_attempt_failures_total", "kind", "shed"); got != shed {
		t.Fatalf("shed-kind attempt failures %d != shed %d", got, shed)
	}
	// Overload is not failure: no breaker may have moved, and nothing may
	// have been refused outright.
	if got := c.sumLabeled("delivery_breaker_transitions_total", "to", "open"); got != 0 {
		t.Fatalf("shedding opened %d circuits", got)
	}
	if got := c.sumLabeled("delivery_attempt_failures_total", "kind", "transport"); got != 0 {
		t.Fatalf("saturation produced %d transport failures", got)
	}
	for i, app := range c.apps {
		if app.Count() != 1 {
			t.Fatalf("node %d delivered %d copies, want exactly 1", i, app.Count())
		}
	}
	if got := c.regs[victim].CounterVec("shed_requests_total", "result").With("exempt").Value(); got == 0 {
		t.Fatal("no exempt request passed the gate — the exemption was never exercised")
	}
	t.Logf("saturated receiver: %d sheds all deferred and retried, coverage in %d/%d windows (analytic %d)",
		shed, windows, budget, analytic)
}

// TestChaosMisbehavingEnvelopes replays the inbound-hardening faults at the
// wire level: an oversized buffer and a truncated one land at a node, are
// rejected before any handler runs, are counted under exactly one reason
// each, and leave the epidemic entirely unharmed.
func TestChaosMisbehavingEnvelopes(t *testing.T) {
	const (
		n      = 8
		target = 2
	)
	reg := metrics.NewRegistry()
	soap.InstallWireMetrics(reg)
	defer soap.InstallWireMetrics(nil)

	c := newCluster(t, clusterConfig{n: n, seed: 239, repairEvery: 200 * time.Millisecond})
	ctx := context.Background()

	decodeErrors := func(reason string) int64 {
		return reg.CounterVec("soap_decode_errors_total", "reason").With(reason).Value()
	}

	// An envelope one byte over the wire cap.
	oversize := make([]byte, soap.MaxEnvelopeBytes+1)
	if err := c.bus.SendEncoded(ctx, c.addrs[target], oversize); err != nil {
		t.Fatal(err)
	}
	// A legitimate notification torn off mid-stream.
	inter, err := c.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	env := soap.NewEnvelope()
	if err := env.SetBody(eventBody{Seq: 99}); err != nil {
		t.Fatal(err)
	}
	whole, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.bus.SendEncoded(ctx, c.addrs[target], whole[:len(whole)/2]); err != nil {
		t.Fatal(err)
	}
	c.clk.Advance(50 * time.Millisecond)

	if got := decodeErrors("oversize"); got != 1 {
		t.Fatalf("oversize decode errors = %d, want exactly 1", got)
	}
	if got := decodeErrors("malformed"); got != 1 {
		t.Fatalf("malformed decode errors = %d, want exactly 1", got)
	}
	for i, app := range c.apps {
		if app.Count() != 0 {
			t.Fatalf("node %d delivered %d events off garbage bytes", i, app.Count())
		}
	}

	// The overlay shrugs: a real event still covers everyone, and the
	// garbage counters stay frozen.
	if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if w := advanceUntil(c.clk, 100*time.Millisecond, 20, func() bool {
		return c.coverage(nil, 1) == n
	}); w > 20 {
		t.Fatalf("post-garbage event covered %d/%d", c.coverage(nil, 1), n)
	}
	if got := decodeErrors("oversize") + decodeErrors("malformed"); got != 2 {
		t.Fatalf("decode-error counters moved during healthy traffic: %d", got)
	}
	t.Logf("misbehaving envelopes: both rejects counted once each, zero handler deliveries, epidemic unharmed")
}
