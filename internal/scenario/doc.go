// Package scenario holds the virtual-time end-to-end suite: complete
// WS-Gossip deployments — coordinator, disseminators, aggregation services,
// membership overlays, self-clocking Runners — driven deterministically on
// clock.Virtual over a lossy, delaying SOAP fabric. No test here sleeps or
// spawns protocol goroutines of its own: rounds fire from Runner timers,
// messages ride the virtual clock, and every assertion runs after an
// Advance barrier. Convergence budgets come from the analytic models in
// internal/epidemic, so a regression must beat the math to pass.
//
// The suite covers: push dissemination torn by mid-stream loss and closed
// by anti-entropy repair; pull-only rounds; deferred lazy push; node churn
// mid-round; membership-driven dissemination where nodes join and leave
// through view exchanges and no target list exists anywhere
// (core.PeerView); coordinator failover mid-interaction against a
// replicated successor; adaptive quiescence backoff (idle deployments fire
// provably fewer rounds, then snap back on traffic); and push-sum
// aggregation, including under loss. Everything passes
// go test -race -count=5 with byte-identical schedules.
//
// The chaos scenarios (chaos_test.go) additionally assert on the metrics
// plane itself: a healed network bisection must show up as a repair
// retransmit spike that subsides, a slow node's tick cost must be visible
// in its tick-duration histogram and nobody else's, and a rogue sender
// replaying captured envelopes must be isolated by exactly the victim's
// duplicate counter.
//
// The package is test-only: its fabric (virtBus) and cluster builders live
// in _test files.
package scenario
