package scenario

import (
	"context"
	"testing"
	"time"
)

// TestScenarioInternedStores checks the cluster-wide envelope interner is
// actually deduplicating: after a lossless push epidemic reaches all n
// nodes, the n retained store copies must collapse to a handful of distinct
// clones (one per hop-count value), with every other store hitting the
// shared copy.
func TestScenarioInternedStores(t *testing.T) {
	const n = 48
	c := newCluster(t, clusterConfig{n: n, seed: 17, repairEvery: 200 * time.Millisecond})
	ctx := context.Background()
	inter, err := c.init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	c.clk.Advance(200 * time.Millisecond)
	if got := c.coverage(nil, 1); got != n {
		t.Fatalf("push covered %d/%d", got, n)
	}
	hits, misses := c.intern.Stats()
	if hits+misses < int64(n) {
		t.Fatalf("interner saw %d retentions, want >= %d (every node stores the event)", hits+misses, n)
	}
	// The stored form varies only by remaining hop budget, so distinct
	// clones are bounded by the hop count, not the population.
	if misses > int64(inter.Params.Hops)+1 {
		t.Fatalf("%d distinct clones for one event (hops=%d): interner not deduplicating", misses, inter.Params.Hops)
	}
	if hits < int64(n/2) {
		t.Fatalf("only %d interner hits across %d nodes: stores are not sharing", hits, n)
	}
}
