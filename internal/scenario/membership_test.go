package scenario

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/clock"
	"wsgossip/internal/core"
	"wsgossip/internal/epidemic"
	"wsgossip/internal/membership"
	"wsgossip/internal/soap"
	"wsgossip/internal/transport"
)

// memberNode is one membership-driven node: a disseminator whose fan-outs
// sample the live membership view, with both the gossip actions and the
// membership exchange actions served on a single SOAP endpoint.
type memberNode struct {
	addr   string
	app    *core.CollectingApp
	dissem *core.Disseminator
	msvc   *membership.Service
	runner *core.Runner
}

// memberCluster is a coordinator-light deployment: the Coordinator still
// hosts Activation/Registration (it hands out fanout and hops) but has no
// subscribers, so every registration returns an empty target list and all
// dissemination targets come from the membership overlay.
type memberCluster struct {
	t      *testing.T
	clk    *clock.Virtual
	bus    *virtBus
	coord  *core.Coordinator
	seed   int64
	nodes  map[string]*memberNode
	order  []string // insertion-ordered addresses for deterministic asserts
	intern *soap.Interner
}

const (
	memberPullEvery     = 100 * time.Millisecond
	memberExchangeEvery = 200 * time.Millisecond
	memberSuspectAfter  = 2 * time.Second
	memberRemoveAfter   = 4 * time.Second
)

func newMemberCluster(t *testing.T, seed int64) *memberCluster {
	t.Helper()
	clk := clock.NewVirtual()
	bus := newVirtBus(clk, seed, time.Millisecond, 5*time.Millisecond)
	c := &memberCluster{
		t: t, clk: clk, bus: bus, seed: seed,
		nodes:  make(map[string]*memberNode),
		intern: soap.NewInterner(0),
	}
	c.coord = core.NewCoordinator(core.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(seed)),
		// No subscribers ever register, so the parameter policy must not
		// depend on the subscription count: classic epidemic sizing for the
		// deployment's design capacity.
		Params: func(int) (int, int) { return 3, 9 },
	})
	bus.Register("mem://coordinator", c.coord.Handler())
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.runner.Stop()
		}
	})
	return c
}

// addNode boots a membership-driven node and joins it to the overlay
// through the given seed addresses — the only way any node ever learns of
// any other. Returns the node.
func (c *memberCluster) addNode(idx int, seeds []string) *memberNode {
	c.t.Helper()
	ctx := context.Background()
	addr := fmt.Sprintf("mem://node%03d", idx)
	dispatcher := soap.NewDispatcher()

	ep := membership.NewSOAPEndpoint(addr, c.bus)
	msvc, err := membership.New(membership.Config{
		Endpoint:     ep,
		Clock:        c.clk,
		RNG:          rand.New(rand.NewSource(c.seed*131 + int64(idx))),
		Fanout:       3,
		SuspectAfter: memberSuspectAfter,
		RemoveAfter:  memberRemoveAfter,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	mux := transport.NewMux()
	msvc.Register(mux)
	mux.Bind(ep)
	ep.RegisterActions(dispatcher)

	app := core.NewCollectingApp()
	d, err := core.NewDisseminator(core.DisseminatorConfig{
		Address: addr,
		Caller:  c.bus,
		App:     app,
		RNG:     rand.New(rand.NewSource(c.seed*31 + int64(idx))),
		Peers:   msvc,
		Intern:  c.intern,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	d.RegisterActions(dispatcher)
	c.bus.Register(addr, dispatcher)

	r, err := core.NewRunner(core.RunnerConfig{
		Clock:           c.clk,
		RNG:             rand.New(rand.NewSource(c.seed*977 + int64(idx))),
		Disseminator:    d,
		PullEvery:       memberPullEvery,
		Membership:      msvc,
		MembershipEvery: memberExchangeEvery,
		JitterFrac:      0.2,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	if err := r.Start(ctx); err != nil {
		c.t.Fatal(err)
	}
	n := &memberNode{addr: addr, app: app, dissem: d, msvc: msvc, runner: r}
	c.nodes[addr] = n
	c.order = append(c.order, addr)
	msvc.Join(ctx, seeds)
	return n
}

// leave removes a node gracefully: it announces departure over the
// membership protocol, stops its rounds, and then crashes off the bus.
func (c *memberCluster) leave(n *memberNode) {
	n.msvc.Leave(context.Background())
	n.runner.Stop()
	c.bus.Crash(n.addr)
	delete(c.nodes, n.addr)
}

// coverage counts live nodes whose app saw at least want events.
func (c *memberCluster) coverage(want int) (covered, total int) {
	for _, addr := range c.order {
		n, alive := c.nodes[addr]
		if !alive {
			continue
		}
		total++
		if n.app.Count() >= want {
			covered++
		}
	}
	return covered, total
}

// TestScenarioMembershipDrivenDissemination is the live-view end-to-end
// case: nodes join and leave through membership exchanges only — the
// Coordinator assigns parameters but zero targets — and WS-PullGossip
// still sustains epidemic coverage within the analytic budget, including
// for nodes that joined mid-interaction.
func TestScenarioMembershipDrivenDissemination(t *testing.T) {
	const (
		nStart = 24
		nJoin  = 8
		nLeave = 6
	)
	c := newMemberCluster(t, 101)
	ctx := context.Background()

	// Bootstrap: every node knows exactly one seed (node 0); the overlay
	// self-assembles through view exchanges.
	c.addNode(0, nil)
	for i := 1; i < nStart; i++ {
		c.addNode(i, []string{"mem://node000"})
	}
	c.clk.Advance(1500 * time.Millisecond)
	for _, addr := range c.order {
		if got := c.nodes[addr].msvc.Size(); got < nStart*3/4 {
			t.Fatalf("%s discovered only %d/%d peers through exchanges", addr, got, nStart-1)
		}
	}

	// The initiator is node 0 itself: its notification seeds from its own
	// live view. The interaction is pull-style, so nothing spreads eagerly.
	n0 := c.nodes["mem://node000"]
	init, err := core.NewInitiator(core.InitiatorConfig{
		Address:    n0.addr,
		Caller:     c.bus,
		Activation: "mem://coordinator",
		Peers:      n0.msvc,
		RNG:        rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartProtocolInteraction(ctx, core.ProtocolPullGossip)
	if err != nil {
		t.Fatal(err)
	}
	if len(inter.Params.Targets) != 0 {
		t.Fatalf("coordinator assigned %d static targets; the scenario must run on the live view alone",
			len(inter.Params.Targets))
	}
	for _, addr := range c.order {
		if err := c.nodes[addr].dissem.JoinInteraction(ctx, inter.Context, core.ProtocolPullGossip); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	analytic, err := epidemic.RoundsForCoverage(nStart, 3, 0.9, 100)
	if err != nil {
		t.Fatal(err)
	}
	budget := 4*analytic + 6
	windows := advanceUntil(c.clk, memberPullEvery, budget, func() bool {
		covered, total := c.coverage(1)
		return covered == total
	})
	if windows > budget {
		covered, total := c.coverage(1)
		t.Fatalf("live-view pull covered %d/%d after %d windows (analytic %d)", covered, total, budget, analytic)
	}

	// Churn mid-interaction: joiners bootstrap from node 0, leavers say
	// goodbye. Nobody edits a target list anywhere.
	joined := make([]*memberNode, 0, nJoin)
	for i := 0; i < nJoin; i++ {
		n := c.addNode(nStart+i, []string{"mem://node000"})
		if err := n.dissem.JoinInteraction(ctx, inter.Context, core.ProtocolPullGossip); err != nil {
			t.Fatal(err)
		}
		joined = append(joined, n)
	}
	leaveRNG := rand.New(rand.NewSource(99))
	var left []string
	for _, i := range leaveRNG.Perm(nStart - 1)[:nLeave] {
		addr := fmt.Sprintf("mem://node%03d", i+1) // never the seed node
		left = append(left, addr)
		c.leave(c.nodes[addr])
	}
	windows = advanceUntil(c.clk, memberPullEvery, budget, func() bool {
		covered, total := c.coverage(1)
		return covered == total
	})
	if windows > budget {
		covered, total := c.coverage(1)
		t.Fatalf("post-churn coverage %d/%d after %d windows: late joiners did not pull the event",
			covered, total, budget)
	}
	for _, n := range joined {
		if n.app.Count() != 1 {
			t.Fatalf("joiner %s delivered %d copies, want exactly 1", n.addr, n.app.Count())
		}
	}

	// A second event over the churned overlay: the survivors plus joiners
	// converge again, still with zero static targets.
	if _, _, err := init.Notify(ctx, inter, eventBody{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	windows = advanceUntil(c.clk, memberPullEvery, budget, func() bool {
		covered, total := c.coverage(2)
		return covered == total
	})
	if windows > budget {
		covered, total := c.coverage(2)
		t.Fatalf("event 2 coverage %d/%d after %d windows on the churned overlay", covered, total, budget)
	}

	// Failure detection: once RemoveAfter elapses, every survivor's view
	// has shed the leavers (tombstoned or aged out) — sends stop targeting
	// the dead.
	c.clk.Advance(memberRemoveAfter + memberSuspectAfter)
	for _, addr := range c.order {
		n, alive := c.nodes[addr]
		if !alive {
			continue
		}
		for _, gone := range left {
			for _, a := range n.msvc.Alive() {
				if a == gone {
					t.Fatalf("%s still lists departed %s as alive after the removal window", addr, gone)
				}
			}
		}
	}
	// Exactly-once delivery held throughout the churn.
	for _, addr := range c.order {
		if n, alive := c.nodes[addr]; alive && n.app.Count() > 2 {
			t.Fatalf("%s delivered %d copies of 2 events", addr, n.app.Count())
		}
	}
}

// TestScenarioCoordinatorFailover crashes the primary coordinator
// mid-interaction: nodes whose first-contact registration finds it dead
// re-register the replicated activity against the successor and the
// dissemination still reaches everyone within the eager-push window.
func TestScenarioCoordinatorFailover(t *testing.T) {
	const n = 48
	clk := clock.NewVirtual()
	bus := newVirtBus(clk, 211, time.Millisecond, 5*time.Millisecond)
	ctx := context.Background()

	successor := core.NewCoordinator(core.CoordinatorConfig{
		Address:             "mem://coord-b",
		RNG:                 rand.New(rand.NewSource(212)),
		ReplicateActivities: true, // accept the primary's activity imports
	})
	bus.Register("mem://coord-b", successor.Handler())
	primary := core.NewCoordinator(core.CoordinatorConfig{
		Address:             "mem://coord-a",
		RNG:                 rand.New(rand.NewSource(211)),
		Caller:              bus,
		Replicas:            []string{"mem://coord-b"},
		ReplicateActivities: true,
	})
	bus.Register("mem://coord-a", primary.Handler())

	apps := make([]*core.CollectingApp, n)
	var runners []*core.Runner
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("mem://node%03d", i)
		apps[i] = core.NewCollectingApp()
		d, err := core.NewDisseminator(core.DisseminatorConfig{
			Address:      addr,
			Caller:       bus,
			App:          apps[i],
			RNG:          rand.New(rand.NewSource(211*31 + int64(i))),
			Coordinators: []string{"mem://coord-b"},
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, d.Handler())
		// Subscribing at the primary replicates the record to the
		// successor, so both coordinators share one assignment base.
		if err := core.SubscribeClient(ctx, bus, "mem://coord-a", addr, core.RoleDisseminator); err != nil {
			t.Fatal(err)
		}
		r, err := core.NewRunner(core.RunnerConfig{
			Clock:        clk,
			RNG:          rand.New(rand.NewSource(211*977 + int64(i))),
			Disseminator: d,
			RepairEvery:  200 * time.Millisecond,
			JitterFrac:   0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(ctx); err != nil {
			t.Fatal(err)
		}
		runners = append(runners, r)
	}

	init, err := core.NewInitiator(core.InitiatorConfig{
		Address: "mem://initiator", Caller: bus, Activation: "mem://coord-a",
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartInteraction(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Activity replication is one-way traffic riding the bus: let it land.
	clk.Advance(10 * time.Millisecond)
	if got := successor.LiveActivities(); got != 1 {
		t.Fatalf("successor imported %d activities, want 1", got)
	}

	// The primary dies while the first epidemic wave is in flight: only
	// the nodes the wave reached within ~one link delay have registered.
	clk.AfterFunc(3*time.Millisecond, func() { bus.Crash("mem://coord-a") })
	if _, _, err := init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	windows := advanceUntil(clk, 100*time.Millisecond, 10, func() bool {
		covered := 0
		for _, app := range apps {
			if app.Count() >= 1 {
				covered++
			}
		}
		return covered == n
	})
	if windows > 10 {
		covered := 0
		for _, app := range apps {
			if app.Count() >= 1 {
				covered++
			}
		}
		t.Fatalf("failover dissemination covered %d/%d", covered, n)
	}
	// (Eager push alone predicts ~0.94 coverage at these parameters; the
	// anti-entropy repair loop is the backstop that makes full coverage a
	// fair assertion — exactly the production configuration.)
	primaryRegs := primary.Stats().Registrations
	successorRegs := successor.Stats().Registrations
	if successorRegs == 0 {
		t.Fatal("no registration failed over to the successor; crash landed too late to matter")
	}
	if primaryRegs == 0 {
		t.Fatal("no registration reached the primary; crash landed before the scenario's point")
	}
	t.Logf("failover: %d registrations at primary, %d at successor, covered in %d windows",
		primaryRegs, successorRegs, windows)
}

// TestScenarioQuiescenceBackoff pins the adaptive-pacing claim: a quiescent
// deployment fires provably fewer pull rounds than the fixed-period
// runtime, and the first notification snaps the loops back so coverage
// still lands within the epidemic budget.
func TestScenarioQuiescenceBackoff(t *testing.T) {
	const (
		n         = 8
		pullEvery = 100 * time.Millisecond
		quiescent = 1600 * time.Millisecond
		idle      = 20 * time.Second
	)
	build := func(adaptive bool) (*clock.Virtual, *virtBus, []*core.Disseminator, []*core.Runner, []*core.CollectingApp) {
		clk := clock.NewVirtual()
		bus := newVirtBus(clk, 303, time.Millisecond, 5*time.Millisecond)
		coord := core.NewCoordinator(core.CoordinatorConfig{
			Address: "mem://coordinator",
			RNG:     rand.New(rand.NewSource(303)),
		})
		bus.Register("mem://coordinator", coord.Handler())
		var ds []*core.Disseminator
		var rs []*core.Runner
		var apps []*core.CollectingApp
		for i := 0; i < n; i++ {
			addr := fmt.Sprintf("mem://node%03d", i)
			app := core.NewCollectingApp()
			d, err := core.NewDisseminator(core.DisseminatorConfig{
				Address: addr,
				Caller:  bus,
				App:     app,
				RNG:     rand.New(rand.NewSource(303*31 + int64(i))),
			})
			if err != nil {
				t.Fatal(err)
			}
			bus.Register(addr, d.Handler())
			if err := core.SubscribeClient(context.Background(), bus, "mem://coordinator", addr, core.RoleDisseminator); err != nil {
				t.Fatal(err)
			}
			cfg := core.RunnerConfig{
				Clock:        clk,
				RNG:          rand.New(rand.NewSource(303*977 + int64(i))),
				Disseminator: d,
				PullEvery:    pullEvery,
				JitterFrac:   0.2,
			}
			if adaptive {
				cfg.QuiescentMax = quiescent
			}
			r, err := core.NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Start(context.Background()); err != nil {
				t.Fatal(err)
			}
			ds = append(ds, d)
			rs = append(rs, r)
			apps = append(apps, app)
		}
		return clk, bus, ds, rs, apps
	}
	fires := func(rs []*core.Runner) int64 {
		var total int64
		for _, r := range rs {
			total += r.FireCount("pull")
		}
		return total
	}

	fclk, _, _, fixedRunners, _ := build(false)
	defer func() {
		for _, r := range fixedRunners {
			r.Stop()
		}
	}()
	fclk.Advance(idle)
	fixed := fires(fixedRunners)

	clk, bus, ds, adaptiveRunners, apps := build(true)
	defer func() {
		for _, r := range adaptiveRunners {
			r.Stop()
		}
	}()
	clk.Advance(idle)
	adaptive := fires(adaptiveRunners)

	// The fixed runtime fires ~idle/period rounds per node; backoff holds
	// the adaptive runtime near idle/quiescentMax plus the settle ramp.
	if fixed < int64(n)*int64(idle/pullEvery)*8/10 {
		t.Fatalf("fixed-period control fired only %d pull rounds; harness broken", fixed)
	}
	if adaptive*3 > fixed {
		t.Fatalf("quiescent adaptive runtime fired %d pull rounds vs %d fixed — backoff saves too little", adaptive, fixed)
	}
	t.Logf("quiescent pull rounds over %v: fixed %d, adaptive %d (%.1fx fewer)",
		idle, fixed, adaptive, float64(fixed)/math.Max(float64(adaptive), 1))

	// Traffic snaps the backed-off loops to base pace: a pull interaction
	// seeded at one node must still reach everyone within the same budget
	// the fixed-period scenario suite uses.
	ctx := context.Background()
	init, err := core.NewInitiator(core.InitiatorConfig{
		Address: "mem://initiator", Caller: bus, Activation: "mem://coordinator",
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := init.StartProtocolInteraction(ctx, core.ProtocolPullGossip)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if err := d.JoinInteraction(ctx, inter.Context, core.ProtocolPullGossip); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	analytic, err := epidemic.RoundsForCoverage(n, inter.Params.Fanout, 0.9, 100)
	if err != nil {
		t.Fatal(err)
	}
	budget := 4*analytic + 6
	windows := advanceUntil(clk, pullEvery, budget, func() bool {
		covered := 0
		for _, app := range apps {
			if app.Count() >= 1 {
				covered++
			}
		}
		return covered == n
	})
	if windows > budget {
		covered := 0
		for _, app := range apps {
			if app.Count() >= 1 {
				covered++
			}
		}
		t.Fatalf("woken adaptive runtime covered %d/%d after %d windows (analytic %d)", covered, n, budget, analytic)
	}
	t.Logf("snap-back: coverage complete in %d windows after %v of quiescence (analytic %d)", windows, idle, analytic)
}

// TestScenarioQuiescentAggregation is the ROADMAP's singled-out case: the
// aggregation exchange loop backs off once every task has converged and
// round budgets are exhausted, and a fresh task snaps it back.
func TestScenarioQuiescentAggregation(t *testing.T) {
	const (
		n             = 16
		exchangeEvery = 100 * time.Millisecond
		quiescent     = 1600 * time.Millisecond
	)
	clk := clock.NewVirtual()
	bus := newVirtBus(clk, 401, time.Millisecond, 5*time.Millisecond)
	ctx := context.Background()
	coord := core.NewCoordinator(core.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(401)),
	})
	bus.Register("mem://coordinator", coord.Handler())

	var runners []*core.Runner
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	addRunner := func(svc interface{ Tick(context.Context) }, seed int64) *core.Runner {
		t.Helper()
		r, err := core.NewRunner(core.RunnerConfig{
			Clock:          clk,
			RNG:            rand.New(rand.NewSource(seed)),
			Aggregator:     svc,
			AggregateEvery: exchangeEvery,
			QuiescentMax:   quiescent,
			JitterFrac:     0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(ctx); err != nil {
			t.Fatal(err)
		}
		runners = append(runners, r)
		return r
	}
	valueRNG := rand.New(rand.NewSource(401 * 7))
	var truthSum float64
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("mem://svc%03d", i)
		v := 10 + valueRNG.Float64()*90
		truthSum += v
		val := v
		svc, err := aggregate.NewService(aggregate.ServiceConfig{
			Address: addr,
			Caller:  bus,
			Value:   func() float64 { return val },
			RNG:     rand.New(rand.NewSource(401*13 + int64(i))),
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, svc.Handler())
		if err := core.SubscribeClient(ctx, bus, "mem://coordinator", addr,
			core.RoleDisseminator, core.ProtocolAggregate); err != nil {
			t.Fatal(err)
		}
		addRunner(svc, 401*17+int64(i))
	}

	// Idle before any task: every exchange loop must back off.
	clk.Advance(10 * time.Second)
	var idleFires int64
	for _, r := range runners {
		idleFires += r.FireCount("aggregate")
	}
	fixedEstimate := int64(n) * int64(10*time.Second/exchangeEvery)
	if idleFires*3 > fixedEstimate {
		t.Fatalf("idle aggregation fired %d exchange rounds (fixed pace would be ~%d); backoff not engaging",
			idleFires, fixedEstimate)
	}

	// A task starts: loops snap back, push-sum converges inside the usual
	// analytic budget, estimates land on truth.
	querier, err := aggregate.NewQuerier(aggregate.QuerierConfig{
		Address:    "mem://querier",
		Caller:     bus,
		Activation: "mem://coordinator",
		RNG:        rand.New(rand.NewSource(401 * 19)),
	})
	if err != nil {
		t.Fatal(err)
	}
	bus.Register("mem://querier", querier.Handler())
	if err := core.SubscribeClient(ctx, bus, "mem://coordinator", "mem://querier",
		core.RoleDisseminator, core.ProtocolAggregate); err != nil {
		t.Fatal(err)
	}
	addRunner(querier, 401*23)
	task, err := querier.StartAggregation(ctx, aggregate.FuncAvg)
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := epidemic.PushSumRoundsToEpsilon(n+1, task.Params.Fanout, task.Params.Epsilon)
	if err != nil {
		t.Fatal(err)
	}
	budget := 2*analytic + 10
	windows := advanceUntil(clk, exchangeEvery, budget, func() bool {
		return querier.Converged(task.ID)
	})
	if windows > budget {
		t.Fatalf("adaptive aggregation not converged after %d windows (analytic %d)", budget, analytic)
	}
	truth := truthSum / float64(n)
	est, ok := querier.Estimate(task.ID)
	if !ok {
		t.Fatal("querier has no estimate after convergence")
	}
	if rel := math.Abs(est-truth) / truth; rel > 0.02 {
		t.Fatalf("estimate %.4f vs truth %.4f (rel err %.3e)", est, truth, rel)
	}

	// Converged and round-capped: the loops go quiescent again.
	clk.Advance(5 * time.Second)
	before := int64(0)
	for _, r := range runners {
		before += r.FireCount("aggregate")
	}
	clk.Advance(10 * time.Second)
	var tail int64
	for _, r := range runners {
		tail += r.FireCount("aggregate")
	}
	tail -= before
	fixedTail := int64(n+1) * int64(10*time.Second/exchangeEvery)
	if tail*3 > fixedTail {
		t.Fatalf("post-convergence aggregation fired %d rounds in 10s (fixed ~%d); no re-quiescence", tail, fixedTail)
	}
	t.Logf("aggregation: idle fires %d (fixed ~%d), converged in %d windows, tail fires %d (fixed ~%d)",
		idleFires, fixedEstimate, windows, tail, fixedTail)
}
