package scenario

import (
	"context"
	"encoding/xml"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/delivery"
	"wsgossip/internal/faults"
	"wsgossip/internal/membership"
	"wsgossip/internal/metrics"
	"wsgossip/internal/probe"
	"wsgossip/internal/soap"
	"wsgossip/internal/transport"
	"wsgossip/internal/wsa"
)

// This file holds the asymmetric-failure chaos scenarios: full nodes —
// membership view + delivery plane + indirect prober — over the virtBus
// fault table, asserting that one-way link faults, NAT'd nodes, and
// multi-fault plan compositions degrade links instead of evicting healthy
// peers, with exact metric accounting.

const (
	actionChaosEvent = "urn:wsgossip:chaos:event"
	chaosWindow      = 100 * time.Millisecond
	chaosSuspect     = 10 * time.Second
	chaosRemove      = 20 * time.Second
)

type chaosEvent struct {
	XMLName xml.Name `xml:"urn:wsgossip:chaos Event"`
	Seq     int      `xml:"Seq"`
}

// chaosNode is one full node: membership for the live view, a delivery
// plane for payload fan-out, and a prober adjudicating circuit openings.
type chaosNode struct {
	addr   string
	msvc   *membership.Service
	plane  *delivery.Plane
	prober *probe.Prober
	reg    *metrics.Registry
	seen   map[int]bool
}

// chaosCluster wires chaosNodes over one virtBus. Payloads spread by
// flooding: first receipt forwards to every alive peer through the
// delivery plane, so every node exercises its breaker against every link.
type chaosCluster struct {
	t     *testing.T
	clk   *clock.Virtual
	bus   *virtBus
	seed  int64
	k     int // prober helper cap; 0 = ask all
	nodes map[string]*chaosNode
	order []string
}

func newChaosCluster(t *testing.T, seed int64, n, k int) *chaosCluster {
	t.Helper()
	clk := clock.NewVirtual()
	c := &chaosCluster{
		t: t, clk: clk, seed: seed, k: k,
		bus:   newVirtBus(clk, seed, time.Millisecond, 5*time.Millisecond),
		nodes: make(map[string]*chaosNode),
	}
	for i := 0; i < n; i++ {
		var seeds []string
		if i > 0 {
			seeds = []string{c.addrOf(0)}
		}
		c.addNode(i, seeds)
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.plane.Close()
		}
	})
	return c
}

func (c *chaosCluster) addrOf(idx int) string { return fmt.Sprintf("mem://node%02d", idx) }

func (c *chaosCluster) addNode(idx int, seeds []string) *chaosNode {
	c.t.Helper()
	addr := c.addrOf(idx)
	dispatcher := soap.NewDispatcher()
	raw := &nodeCaller{bus: c.bus, from: addr}
	reg := metrics.NewRegistry()

	ep := membership.NewSOAPEndpoint(addr, raw)
	msvc, err := membership.New(membership.Config{
		Endpoint:     ep,
		Clock:        c.clk,
		RNG:          rand.New(rand.NewSource(c.seed*131 + int64(idx))),
		Fanout:       3,
		SuspectAfter: chaosSuspect,
		RemoveAfter:  chaosRemove,
		Metrics:      reg,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	mux := transport.NewMux()
	msvc.Register(mux)
	mux.Bind(ep)
	ep.RegisterActions(dispatcher)

	n := &chaosNode{addr: addr, msvc: msvc, reg: reg, seen: make(map[int]bool)}
	n.prober = probe.New(probe.Config{
		Self:    addr,
		Caller:  raw, // raw binding: probes bypass the plane under test
		Clock:   c.clk,
		Peers:   msvc,
		K:       c.k,
		Timeout: 500 * time.Millisecond,
		RNG:     rand.New(rand.NewSource(c.seed*577 + int64(idx))),
		Metrics: reg,
		OnDown:  msvc.Suspect,
	})
	n.prober.RegisterActions(dispatcher)
	n.plane = delivery.NewPlane(delivery.Config{
		Caller:           raw,
		Clock:            c.clk,
		RNG:              rand.New(rand.NewSource(c.seed*7919 + int64(idx))),
		Metrics:          reg,
		QueueCap:         16,
		MaxInflight:      1,
		AttemptTimeout:   time.Second,
		MaxAttempts:      3,
		BackoffBase:      50 * time.Millisecond,
		BackoffMax:       400 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  400 * time.Millisecond,
		OnPeerDown:       n.prober.Confirm,
		OnPeerUp:         n.prober.ClearDegraded,
	})
	dispatcher.Register(actionChaosEvent, soap.HandlerFunc(func(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
		var ev chaosEvent
		if err := req.Envelope.DecodeBody(&ev); err != nil {
			return nil, soap.NewFault(soap.CodeSender, "malformed chaos event: "+err.Error())
		}
		if !n.seen[ev.Seq] {
			n.seen[ev.Seq] = true
			c.flood(n, ev.Seq)
		}
		return nil, nil
	}))
	c.bus.Register(addr, dispatcher)
	c.nodes[addr] = n
	c.order = append(c.order, addr)
	msvc.Join(context.Background(), seeds)
	return n
}

// flood forwards seq from n to every alive peer through n's delivery
// plane. Send errors are the plane's business (retry, breaker, probe).
func (c *chaosCluster) flood(n *chaosNode, seq int) {
	for _, peer := range n.msvc.Alive() {
		env := soap.NewEnvelope()
		if err := env.SetAddressing(wsa.Headers{To: peer, Action: actionChaosEvent, MessageID: wsa.NewMessageID()}); err != nil {
			c.t.Fatal(err)
		}
		if err := env.SetBody(chaosEvent{Seq: seq}); err != nil {
			c.t.Fatal(err)
		}
		_ = n.plane.Send(context.Background(), peer, env)
	}
}

// broadcast starts an epidemic: the origin delivers seq locally and floods.
func (c *chaosCluster) broadcast(origin string, seq int) {
	n := c.nodes[origin]
	n.seen[seq] = true
	c.flood(n, seq)
}

// runWindows drives up to budget windows — every node's membership tick,
// then one window of virtual time — returning the window count at which
// done first held, or budget+1. A nil done runs the full budget.
func (c *chaosCluster) runWindows(budget int, done func() bool) int {
	ctx := context.Background()
	for w := 1; w <= budget; w++ {
		for _, addr := range c.order {
			c.nodes[addr].msvc.Tick(ctx)
		}
		c.clk.Advance(chaosWindow)
		if done != nil && done() {
			return w
		}
	}
	if done == nil {
		return budget
	}
	return budget + 1
}

// bootstrap assembles the full-view overlay and asserts it converged.
func (c *chaosCluster) bootstrap() {
	c.t.Helper()
	c.runWindows(20, nil)
	for _, addr := range c.order {
		if got := c.nodes[addr].msvc.Size(); got != len(c.order)-1 {
			c.t.Fatalf("%s bootstrapped %d/%d peers", addr, got, len(c.order)-1)
		}
	}
}

// covered reports which nodes have seen seq, as a deterministic bitmask.
func (c *chaosCluster) covered(seq int) string {
	var b strings.Builder
	for _, addr := range c.order {
		if c.nodes[addr].seen[seq] {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func (c *chaosCluster) fullCoverage(seq int) bool {
	return !strings.Contains(c.covered(seq), "0")
}

// chaosSumCounter sums one plain counter family across every node.
func (c *chaosCluster) chaosSumCounter(name string) int64 {
	var sum int64
	for _, addr := range c.order {
		sum += c.nodes[addr].reg.Counter(name).Value()
	}
	return sum
}

// chaosSumLabeled sums one labeled counter value across every node.
func (c *chaosCluster) chaosSumLabeled(family, label, value string) int64 {
	var sum int64
	for _, addr := range c.order {
		sum += c.nodes[addr].reg.CounterVec(family, label).With(value).Value()
	}
	return sum
}

func aliveContains(s *membership.Service, addr string) bool {
	for _, a := range s.Alive() {
		if a == addr {
			return true
		}
	}
	return false
}

// TestChaosAsymmetricLinkNoFalseSuspicion is the core asymmetric-failure
// case: exactly one direction of one link refuses connections. The
// sender's circuit opens — once — and instead of suspecting the healthy
// peer, the indirect probe confirms it via helpers: zero suspicions
// anywhere, the peer stays in the alive view, the link is marked
// degraded, and the epidemic still covers every node within budget
// because relays carry the payload around the dead direction.
func TestChaosAsymmetricLinkNoFalseSuspicion(t *testing.T) {
	c := newChaosCluster(t, 1201, 8, 3)
	c.bootstrap()
	a, b := c.addrOf(1), c.addrOf(2)
	c.bus.Faults().RefuseLink("oneway", []string{a}, []string{b})

	c.broadcast(a, 1)
	const budget = 20
	if w := c.runWindows(budget, func() bool { return c.fullCoverage(1) }); w > budget {
		t.Fatalf("coverage %s after %d windows; the one-way fault must not stall the epidemic", c.covered(1), budget)
	}
	// Let the retry/breaker/probe machinery fully settle.
	c.runWindows(10, nil)

	na := c.nodes[a]
	opened := na.reg.CounterVec("delivery_breaker_transitions_total", "to").With("open").Value()
	averted := na.reg.Counter("membership_suspicions_averted_total").Value()
	if opened != 1 {
		t.Fatalf("a's breaker opened %d times, want exactly 1 (no flapping)", opened)
	}
	if averted != opened {
		t.Fatalf("averted suspicions = %d, opened circuits = %d; every opening must be adjudicated", averted, opened)
	}
	if got := na.reg.CounterVec("delivery_indirect_probes_total", "result").With(probe.ResultAverted).Value(); got != 1 {
		t.Fatalf("averted probe rounds = %d, want 1", got)
	}
	if got := c.chaosSumCounter("membership_suspects_total"); got != 0 {
		t.Fatalf("membership_suspects_total = %d across the cluster, want 0: the one-way link must not produce false suspicions", got)
	}
	if !aliveContains(na.msvc, b) {
		t.Fatalf("%s dropped healthy %s from its alive view", a, b)
	}
	if !na.prober.IsDegraded(b) {
		t.Fatalf("%s -> %s not marked asymmetric-degraded", a, b)
	}
	// The rest of the cluster never even opened a circuit.
	if got := c.chaosSumLabeled("delivery_breaker_transitions_total", "to", "open"); got != 1 {
		t.Fatalf("cluster-wide breaker openings = %d, want 1 (only the faulted direction)", got)
	}
	// Exact fault accounting: every bus refusal is the named rule's.
	if got, want := int64(c.bus.Refused()), c.bus.Faults().Counts()["oneway"]; got != want {
		t.Fatalf("bus refusals %d != rule count %d", got, want)
	}
}

// TestChaosNATReachableOnlyViaRelays puts one node behind a reachability
// matrix: inbound only from two designated relays. Every non-relay's
// circuit to it opens and is averted through the relays, traffic reaches
// it via relay forwarding only, and nobody suspects it.
func TestChaosNATReachableOnlyViaRelays(t *testing.T) {
	c := newChaosCluster(t, 1301, 8, 0) // K=0: ask every helper, so relays are always consulted
	c.bootstrap()
	nat := c.addrOf(6)
	relays := []string{c.addrOf(1), c.addrOf(2)}
	c.bus.Faults().SetNAT(nat, relays...)

	c.broadcast(c.addrOf(0), 1)
	const budget = 20
	if w := c.runWindows(budget, func() bool { return c.fullCoverage(1) }); w > budget {
		t.Fatalf("coverage %s after %d windows; the NAT'd node must be fed via its relays", c.covered(1), budget)
	}
	c.runWindows(10, nil)

	isRelay := map[string]bool{relays[0]: true, relays[1]: true}
	var totalOpened, totalAverted int64
	for _, addr := range c.order {
		n := c.nodes[addr]
		opened := n.reg.CounterVec("delivery_breaker_transitions_total", "to").With("open").Value()
		averted := n.reg.Counter("membership_suspicions_averted_total").Value()
		totalOpened += opened
		totalAverted += averted
		switch {
		case addr == nat || isRelay[addr]:
			if opened != 0 {
				t.Fatalf("%s opened %d circuits; relays and the NAT'd node itself have clear paths", addr, opened)
			}
		default:
			if opened != 1 {
				t.Fatalf("%s opened %d circuits to the NAT'd node, want 1", addr, opened)
			}
			if !n.prober.IsDegraded(nat) {
				t.Fatalf("%s did not mark the NAT'd node degraded", addr)
			}
		}
		if !aliveContains(n.msvc, nat) && addr != nat {
			t.Fatalf("%s dropped the NAT'd node from its alive view", addr)
		}
	}
	if totalAverted != totalOpened {
		t.Fatalf("averted %d != opened %d: exact adjudication accounting broken", totalAverted, totalOpened)
	}
	if got := c.chaosSumCounter("membership_suspects_total"); got != 0 {
		t.Fatalf("membership_suspects_total = %d, want 0: NAT must degrade links, not evict the node", got)
	}
	// Every refusal on the bus is the NAT matrix's doing.
	if got, want := int64(c.bus.Refused()), c.bus.Faults().Counts()[faults.RuleNATPrefix+nat]; got != want {
		t.Fatalf("bus refusals %d != NAT rule count %d", got, want)
	}
}

// compoSummary captures everything a composition replay must reproduce.
type compoSummary struct {
	sent, dropped, delivered, refused int
	counts                            map[string]int64
	suspects, averted, opened         int64
	seen1, seen2                      string
}

// TestChaosFourFaultComposition scripts four fault classes — global loss,
// an asymmetric refuse link, a partition, and crash/recover churn — as one
// declarative plan, runs it over full nodes, and checks (a) the asymmetric
// link is adjudicated, not suspected, (b) a post-heal epidemic reaches
// everyone including the recovered node, and (c) the entire composition
// replays to identical accounting under the same seed.
func TestChaosFourFaultComposition(t *testing.T) {
	const plan = `
0ms   loss 0.1
0ms   refuse mem://node01->mem://node03 name=oneway
250ms partition mem://node0{0..4} name=split
300ms crash mem://node07
450ms heal split
600ms recover mem://node07
700ms heal-all
`
	run := func() compoSummary {
		c := newChaosCluster(t, 1401, 10, 0)
		c.bootstrap()
		p, err := faults.ParsePlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		err = p.Schedule(c.clk, faults.Applier{
			Table:   c.bus.Faults(),
			Crash:   c.bus.Crash,
			Recover: c.bus.Recover,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Event 1 lands while loss + the one-way refuse are active and the
		// partition is about to bite; flooding is one-shot, so its coverage
		// may legitimately be partial — what matters is determinism and that
		// no healthy node gets suspected.
		c.clk.Advance(20 * time.Millisecond)
		c.broadcast(c.addrOf(1), 1)
		c.runWindows(10, nil) // drive through the whole 700ms plan and settle

		// Event 2 after heal-all: the fabric is clean again and node07 is
		// back, so coverage must be total.
		c.broadcast(c.addrOf(5), 2)
		const budget = 20
		if w := c.runWindows(budget, func() bool { return c.fullCoverage(2) }); w > budget {
			t.Fatalf("post-heal coverage %s after %d windows", c.covered(2), budget)
		}

		s := compoSummary{
			counts:   c.bus.Faults().Counts(),
			suspects: c.chaosSumCounter("membership_suspects_total"),
			averted:  c.chaosSumCounter("membership_suspicions_averted_total"),
			opened:   c.chaosSumLabeled("delivery_breaker_transitions_total", "to", "open"),
			seen1:    c.covered(1),
			seen2:    c.covered(2),
		}
		s.sent, s.dropped, s.delivered = c.bus.Stats()
		s.refused = c.bus.Refused()

		n1 := c.nodes[c.addrOf(1)]
		if !aliveContains(n1.msvc, c.addrOf(3)) {
			t.Fatalf("node01 dropped node03 (healthy, one-way-refused) from its alive view")
		}
		if !n1.prober.IsDegraded(c.addrOf(3)) && c.bus.Faults().Active() {
			t.Fatal("node01 did not degrade the refused link")
		}
		return s
	}

	s1 := run()
	if s1.suspects != 0 {
		t.Fatalf("suspicions = %d, want 0: every circuit opening must be averted (faults were asymmetric or silent)", s1.suspects)
	}
	if s1.opened == 0 || s1.averted != s1.opened {
		t.Fatalf("averted %d != opened %d (want equal and non-zero)", s1.averted, s1.opened)
	}
	for _, rule := range []string{"oneway", "split", faults.RuleLoss} {
		if s1.counts[rule] == 0 {
			t.Fatalf("rule %q never bit; the composition did not compose (counts: %v)", rule, s1.counts)
		}
	}
	if int64(s1.refused) != s1.counts["oneway"] {
		t.Fatalf("bus refusals %d != oneway rule count %d", s1.refused, s1.counts["oneway"])
	}

	// Same plan + same seed ⇒ identical everything.
	s2 := run()
	if s1.sent != s2.sent || s1.dropped != s2.dropped || s1.delivered != s2.delivered || s1.refused != s2.refused {
		t.Fatalf("bus stats differ across replays:\n  %+v\n  %+v", s1, s2)
	}
	if s1.seen1 != s2.seen1 || s1.seen2 != s2.seen2 {
		t.Fatalf("coverage differs across replays: %s/%s vs %s/%s", s1.seen1, s1.seen2, s2.seen1, s2.seen2)
	}
	if s1.suspects != s2.suspects || s1.averted != s2.averted || s1.opened != s2.opened {
		t.Fatalf("failure-detector accounting differs across replays:\n  %+v\n  %+v", s1, s2)
	}
	keys := make([]string, 0, len(s1.counts))
	for k := range s1.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if s1.counts[k] != s2.counts[k] {
			t.Fatalf("rule %q count differs across replays: %d vs %d", k, s1.counts[k], s2.counts[k])
		}
	}
}

// TestChaosHalfOpenProbeDegradedNotDown pins the long-horizon behaviour of
// a breaker against a one-way-dead link: the circuit opens once, every
// half-open probe fails without re-firing OnPeerDown, the indirect
// confirmation holds the peer at "degraded, not down" — and when the link
// heals, one successful probe closes the circuit and clears the mark.
func TestChaosHalfOpenProbeDegradedNotDown(t *testing.T) {
	c := newChaosCluster(t, 1501, 5, 0)
	c.bootstrap()
	a, b := c.addrOf(1), c.addrOf(2)
	c.bus.Faults().RefuseLink("oneway", []string{a}, []string{b})
	na := c.nodes[a]

	// A long stretch of virtual time with steady traffic pressure: each
	// window pushes another payload at b, exercising fast-fails and
	// half-open probes over many cooldown cycles.
	seq := 10
	c.broadcast(a, seq)
	for i := 0; i < 40; i++ {
		seq++
		c.broadcast(a, seq)
		c.runWindows(2, nil)
	}

	trans := na.reg.CounterVec("delivery_breaker_transitions_total", "to")
	if got := trans.With("open").Value(); got != 1 {
		t.Fatalf("breaker opened %d times over 8s of failed half-open probes, want exactly 1", got)
	}
	if got := trans.With("closed").Value(); got != 0 {
		t.Fatalf("breaker closed %d times while the link was still dead", got)
	}
	if got := na.reg.Counter("membership_suspicions_averted_total").Value(); got != 1 {
		t.Fatalf("averted = %d, want 1 (OnPeerDown must not re-fire on failed probes)", got)
	}
	if !na.prober.IsDegraded(b) || !aliveContains(na.msvc, b) {
		t.Fatalf("b must be degraded-but-alive at a (degraded=%v)", na.prober.IsDegraded(b))
	}
	if got := c.chaosSumCounter("membership_suspects_total"); got != 0 {
		t.Fatalf("suspects = %d, want 0", got)
	}

	// Heal: the next due probe succeeds, the circuit closes, OnPeerUp
	// clears the degraded mark, and payloads flow directly again.
	c.bus.Faults().Heal("oneway")
	for i := 0; i < 10 && trans.With("closed").Value() == 0; i++ {
		seq++
		c.broadcast(a, seq)
		c.runWindows(2, nil)
	}
	if got := trans.With("closed").Value(); got != 1 {
		t.Fatalf("breaker close transitions after heal = %d, want 1", got)
	}
	if na.prober.IsDegraded(b) {
		t.Fatal("OnPeerUp did not clear the degraded mark after recovery")
	}
	if !c.nodes[b].seen[seq] {
		t.Fatalf("b never received the post-heal payload seq %d", seq)
	}
}
