// The dissemination and aggregation scenario cases (see doc.go for the
// suite's ground rules: no sleeps, Runner-fired rounds, analytic budgets).
package scenario

import (
	"context"
	"encoding/xml"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/clock"
	"wsgossip/internal/core"
	"wsgossip/internal/delivery"
	"wsgossip/internal/epidemic"
	"wsgossip/internal/gossip"
	"wsgossip/internal/metrics"
	"wsgossip/internal/soap"
)

type eventBody struct {
	XMLName xml.Name `xml:"urn:example:scenario Event"`
	Seq     int      `xml:"Seq"`
}

// cluster is one dissemination deployment on a virtual clock: coordinator,
// n disseminators each owning a Runner, and an initiator.
type cluster struct {
	clk     *clock.Virtual
	bus     *virtBus
	coord   *core.Coordinator
	init    *core.Initiator
	addrs   []string
	dissems []*core.Disseminator
	apps    []*core.CollectingApp
	runners []*core.Runner
	// regs holds one metrics registry per node, so scenario assertions can
	// attribute counters to individual nodes.
	regs []*metrics.Registry
	// planes holds each node's delivery plane when clusterConfig.plane is
	// set (indexed like dissems), plus the initiator's. Nil entries mean
	// that sender goes to the bus directly.
	planes    []*delivery.Plane
	initPlane *delivery.Plane
	// initReg is the initiator's own metrics registry (the initiator is not
	// a cluster node but its plane's counters matter to delivery accounting).
	initReg *metrics.Registry
	// intern is the cluster-wide envelope interner every node's store shares.
	intern *soap.Interner
}

// clusterConfig selects the deployment shape for one scenario.
type clusterConfig struct {
	n             int
	seed          int64
	style         string // "" = coordinator default (push); "lazypush"
	fanout, hops  int
	pullEvery     time.Duration
	repairEvery   time.Duration
	announceEvery time.Duration
	minDelay      time.Duration
	maxDelay      time.Duration
	// nodeClock, when set, overrides node i's Runner clock (the straggler
	// scenario wraps the shared virtual clock in a skewing one). Nil or a
	// nil return keeps the shared clock.
	nodeClock func(i int, shared *clock.Virtual) clock.Clock
	// plane, when set, wraps each sender's caller in a delivery plane built
	// from the returned config — Caller, Clock, Metrics, and RNG are filled
	// in per node; a nil return leaves that sender on the raw bus. It is
	// called once per node and once with i == -1 for the initiator.
	plane func(i int) *delivery.Config
}

func newCluster(t *testing.T, cfg clusterConfig) *cluster {
	t.Helper()
	if cfg.minDelay == 0 {
		cfg.minDelay = time.Millisecond
	}
	if cfg.maxDelay == 0 {
		cfg.maxDelay = 5 * time.Millisecond
	}
	clk := clock.NewVirtual()
	bus := newVirtBus(clk, cfg.seed, cfg.minDelay, cfg.maxDelay)
	c := &cluster{clk: clk, bus: bus}

	ccfg := core.CoordinatorConfig{
		Address: "mem://coordinator",
		RNG:     rand.New(rand.NewSource(cfg.seed)),
	}
	if cfg.fanout > 0 {
		f, h := cfg.fanout, cfg.hops
		ccfg.Params = func(int) (int, int) { return f, h }
	}
	if cfg.style == "lazypush" {
		ccfg.Style = gossip.StyleLazyPush
	}
	c.coord = core.NewCoordinator(ccfg)
	bus.Register("mem://coordinator", c.coord.Handler())

	// One interner per cluster: every node's lazy/pull store shares a single
	// deep clone of each gossiped notification instead of holding its own.
	intern := soap.NewInterner(0)
	c.intern = intern
	ctx := context.Background()
	for i := 0; i < cfg.n; i++ {
		addr := fmt.Sprintf("mem://node%03d", i)
		app := core.NewCollectingApp()
		reg := metrics.NewRegistry()
		var caller soap.Caller = &nodeCaller{bus: bus, from: addr}
		var plane *delivery.Plane
		if cfg.plane != nil {
			if pc := cfg.plane(i); pc != nil {
				filled := *pc
				filled.Caller = caller
				filled.Clock = clk
				filled.Metrics = reg
				if filled.RNG == nil {
					filled.RNG = rand.New(rand.NewSource(cfg.seed*7919 + int64(i)))
				}
				plane = delivery.NewPlane(filled)
				caller = plane
			}
		}
		c.planes = append(c.planes, plane)
		d, err := core.NewDisseminator(core.DisseminatorConfig{
			Address: addr,
			Caller:  caller,
			App:     app,
			RNG:     rand.New(rand.NewSource(cfg.seed*31 + int64(i))),
			Clock:   clk,
			Metrics: reg,
			Intern:  intern,
		})
		if err != nil {
			t.Fatal(err)
		}
		bus.Register(addr, d.Handler())
		if err := core.SubscribeClient(ctx, bus, "mem://coordinator", addr, core.RoleDisseminator); err != nil {
			t.Fatal(err)
		}
		var runClock clock.Clock = clk
		if cfg.nodeClock != nil {
			if c := cfg.nodeClock(i, clk); c != nil {
				runClock = c
			}
		}
		r, err := core.NewRunner(core.RunnerConfig{
			Clock:         runClock,
			RNG:           rand.New(rand.NewSource(cfg.seed*977 + int64(i))),
			Metrics:       reg,
			Disseminator:  d,
			PullEvery:     cfg.pullEvery,
			RepairEvery:   cfg.repairEvery,
			AnnounceEvery: cfg.announceEvery,
			JitterFrac:    0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Start(ctx); err != nil {
			t.Fatal(err)
		}
		c.addrs = append(c.addrs, addr)
		c.dissems = append(c.dissems, d)
		c.apps = append(c.apps, app)
		c.runners = append(c.runners, r)
		c.regs = append(c.regs, reg)
	}
	c.initReg = metrics.NewRegistry()
	var initCaller soap.Caller = bus
	if cfg.plane != nil {
		if pc := cfg.plane(-1); pc != nil {
			filled := *pc
			filled.Caller = bus
			filled.Clock = clk
			filled.Metrics = c.initReg
			if filled.RNG == nil {
				filled.RNG = rand.New(rand.NewSource(cfg.seed*7919 - 1))
			}
			c.initPlane = delivery.NewPlane(filled)
			initCaller = c.initPlane
		}
	}
	var err error
	c.init, err = core.NewInitiator(core.InitiatorConfig{
		Address:    "mem://initiator",
		Caller:     initCaller,
		Activation: "mem://coordinator",
		Metrics:    c.initReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, r := range c.runners {
			r.Stop()
		}
		for _, p := range c.planes {
			if p != nil {
				p.Close()
			}
		}
		if c.initPlane != nil {
			c.initPlane.Close()
		}
	})
	return c
}

// crash kills node i at the current instant: the bus drops its traffic and
// its runner stops scheduling rounds.
func (c *cluster) crash(i int) {
	c.bus.Crash(c.addrs[i])
	c.runners[i].Stop()
}

// coverage counts nodes in alive whose app received at least want events.
func (c *cluster) coverage(alive map[int]bool, want int) int {
	covered := 0
	for i, app := range c.apps {
		if alive != nil && !alive[i] {
			continue
		}
		if app.Count() >= want {
			covered++
		}
	}
	return covered
}

// advanceUntil advances the clock window by window until done() or the
// budget is exhausted, returning the number of windows consumed.
func advanceUntil(clk *clock.Virtual, window time.Duration, budget int, done func() bool) int {
	for w := 1; w <= budget; w++ {
		clk.Advance(window)
		if done() {
			return w
		}
	}
	return budget + 1
}

// TestScenarioDissemination is the virtual-time table suite for the
// dissemination protocols: push with mid-stream loss closed by anti-entropy
// repair, pull-only rounds, deferred lazy push, slow links, and node churn
// mid-round — all self-clocked, all deterministic.
func TestScenarioDissemination(t *testing.T) {
	const n = 48
	type scenario struct {
		name string
		cfg  clusterConfig
		run  func(t *testing.T, c *cluster)
	}
	scenarios := []scenario{
		{
			// WS-PushGossip with anti-entropy: event 1 spreads loss-free
			// (every node registers the interaction); the link then turns
			// lossy and event 2 is torn up mid-epidemic; repair rounds
			// close it on every node.
			name: "push/loss-midstream-repair-closes",
			cfg: clusterConfig{
				n: n, seed: 11,
				repairEvery: 200 * time.Millisecond,
			},
			run: func(t *testing.T, c *cluster) {
				ctx := context.Background()
				inter, err := c.init.StartInteraction(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
					t.Fatal(err)
				}
				c.clk.Advance(100 * time.Millisecond) // push phase: a few link delays deep
				if got := c.coverage(nil, 1); got != n {
					t.Fatalf("lossless push covered %d/%d", got, n)
				}

				const loss = 0.40
				c.bus.SetLoss(loss)
				if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 2}); err != nil {
					t.Fatal(err)
				}
				c.clk.Advance(100 * time.Millisecond)
				partial := c.coverage(nil, 2)
				if partial == n {
					t.Fatalf("40%% loss still covered everyone eagerly; scenario exerts no repair pressure")
				}
				// Sanity against the analytic lossy-push fixed point: the
				// eager phase should land in the model's neighbourhood.
				if pred, err := epidemic.ExpectedCoverageLossy(n, inter.Params.Fanout, inter.Params.Hops, loss); err == nil {
					if frac := float64(partial) / float64(n); math.Abs(frac-pred) > 0.25 {
						t.Fatalf("eager coverage %.2f implausibly far from analytic %.2f", frac, pred)
					}
				}
				windows := advanceUntil(c.clk, 200*time.Millisecond, 30, func() bool {
					return c.coverage(nil, 2) == n
				})
				if windows > 30 {
					t.Fatalf("repair never closed the gap: %d/%d after budget", c.coverage(nil, 2), n)
				}
				t.Logf("eager coverage %d/%d, repair closed in %d windows", partial, n, windows)
			},
		},
		{
			// WS-PullGossip only: one seeding, then nothing moves except
			// by pull rounds. Budget derives from the epidemic model.
			name: "pull/rounds-only",
			cfg: clusterConfig{
				n: n, seed: 23,
				pullEvery: 100 * time.Millisecond,
			},
			run: func(t *testing.T, c *cluster) {
				ctx := context.Background()
				inter, err := c.init.StartProtocolInteraction(ctx, core.ProtocolPullGossip)
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
					t.Fatal(err)
				}
				for _, d := range c.dissems {
					if err := d.JoinInteraction(ctx, inter.Context, core.ProtocolPullGossip); err != nil {
						t.Fatal(err)
					}
				}
				c.clk.Advance(20 * time.Millisecond)
				if got := c.coverage(nil, 1); got == 0 || got == n {
					t.Fatalf("seeding covered %d/%d, want partial", got, n)
				}
				// Pull anti-entropy converges at least as fast per round as
				// infect-and-die push spreads per hop; give it 4x the
				// analytic push rounds plus slack for jittered phases.
				// (0.9 is the highest target below push's fanout-3 fixed
				// point; pull itself keeps going to 1.0.)
				analytic, err := epidemic.RoundsForCoverage(n, inter.Params.Fanout, 0.9, 100)
				if err != nil {
					t.Fatal(err)
				}
				budget := 4*analytic + 6
				windows := advanceUntil(c.clk, 100*time.Millisecond, budget, func() bool {
					return c.coverage(nil, 1) == n
				})
				if windows > budget {
					t.Fatalf("pull rounds left %d/%d covered after %d windows (analytic %d)",
						c.coverage(nil, 1), n, budget, analytic)
				}
				for i, app := range c.apps {
					if app.Count() != 1 {
						t.Fatalf("node %d delivered %d copies, want exactly 1", i, app.Count())
					}
				}
				t.Logf("pull covered %d nodes in %d windows (analytic push rounds %d)", n, windows, analytic)
			},
		},
		{
			// Deferred lazy push under loss and slow links: announcements
			// ride announce timers, payload fetches are pulled, repair
			// backstops lost IHAVEs.
			name: "lazypush/deferred-announce-loss",
			cfg: clusterConfig{
				n: n, seed: 37, style: "lazypush",
				fanout: 4, hops: 9,
				announceEvery: 100 * time.Millisecond,
				repairEvery:   400 * time.Millisecond,
				maxDelay:      15 * time.Millisecond,
			},
			run: func(t *testing.T, c *cluster) {
				ctx := context.Background()
				inter, err := c.init.StartInteraction(ctx)
				if err != nil {
					t.Fatal(err)
				}
				// Event 1 spreads loss-free: every node registers the
				// interaction (a node never contacted at all has no state
				// to repair from).
				if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
					t.Fatal(err)
				}
				warm := advanceUntil(c.clk, 100*time.Millisecond, 40, func() bool {
					return c.coverage(nil, 1) == n
				})
				if warm > 40 {
					t.Fatalf("lossless lazy push covered %d/%d after budget", c.coverage(nil, 1), n)
				}
				// Event 2 fights 10% loss on announcements, fetches, and
				// payloads; announce retries and repair close it.
				c.bus.SetLoss(0.10)
				if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 2}); err != nil {
					t.Fatal(err)
				}
				windows := advanceUntil(c.clk, 100*time.Millisecond, 40, func() bool {
					return c.coverage(nil, 2) == n
				})
				if windows > 40 {
					t.Fatalf("lossy lazy push covered %d/%d after budget", c.coverage(nil, 2), n)
				}
				for i, app := range c.apps {
					if app.Count() != 2 {
						t.Fatalf("node %d delivered %d copies, want exactly 2", i, app.Count())
					}
				}
				t.Logf("deferred lazy push: event1 in %d windows, lossy event2 in %d windows", warm, windows)
			},
		},
		{
			// Churn mid-round: a quarter of the nodes crash while the pull
			// epidemic is in flight; survivors still converge, the dead
			// stay silent.
			name: "pull/churn-midround",
			cfg: clusterConfig{
				n: n, seed: 53,
				pullEvery: 100 * time.Millisecond,
			},
			run: func(t *testing.T, c *cluster) {
				ctx := context.Background()
				inter, err := c.init.StartProtocolInteraction(ctx, core.ProtocolPullGossip)
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := c.init.Notify(ctx, inter, eventBody{Seq: 1}); err != nil {
					t.Fatal(err)
				}
				for _, d := range c.dissems {
					if err := d.JoinInteraction(ctx, inter.Context, core.ProtocolPullGossip); err != nil {
						t.Fatal(err)
					}
				}
				// Crash every 4th node 150ms in — mid-pull-round.
				crashRNG := rand.New(rand.NewSource(99))
				alive := make(map[int]bool, n)
				for i := 0; i < n; i++ {
					alive[i] = true
				}
				var crashed []int
				for _, i := range crashRNG.Perm(n)[:n/4] {
					crashed = append(crashed, i)
					alive[i] = false
				}
				c.clk.AfterFunc(150*time.Millisecond, func() {
					for _, i := range crashed {
						c.crash(i)
					}
				})
				budget := 40
				windows := advanceUntil(c.clk, 100*time.Millisecond, budget, func() bool {
					return c.coverage(alive, 1) == n-len(crashed)
				})
				if windows > budget {
					t.Fatalf("churned pull covered %d/%d survivors after budget",
						c.coverage(alive, 1), n-len(crashed))
				}
				// The dead must not have taken deliveries after crashing:
				// counts are frozen at 0 or 1 and no app saw duplicates.
				for i, app := range c.apps {
					if app.Count() > 1 {
						t.Fatalf("node %d delivered %d copies, want at most 1", i, app.Count())
					}
				}
				t.Logf("%d/%d survivors covered in %d windows despite %d mid-round crashes",
					c.coverage(alive, 1), n-len(crashed), windows, len(crashed))
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			c := newCluster(t, sc.cfg)
			sc.run(t, c)
		})
	}
}

// TestScenarioAggregation runs push-sum aggregation end to end on the
// virtual clock: services join through the coordinator, exchange rounds
// fire from their runners, and the querier's estimate must reach ground
// truth within the analytic round budget from internal/epidemic.
func TestScenarioAggregation(t *testing.T) {
	const exchangeEvery = 100 * time.Millisecond
	cases := []struct {
		name string
		fn   aggregate.Func
		n    int
		loss float64
		seed int64
	}{
		{name: "avg/lossless", fn: aggregate.FuncAvg, n: 64, seed: 71},
		{name: "count/lossless", fn: aggregate.FuncCount, n: 48, seed: 83},
		// Extremes merge idempotently, so max survives message loss.
		{name: "max/10pct-loss", fn: aggregate.FuncMax, n: 64, loss: 0.10, seed: 97},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := clock.NewVirtual()
			bus := newVirtBus(clk, tc.seed, time.Millisecond, 5*time.Millisecond)
			ctx := context.Background()

			coord := core.NewCoordinator(core.CoordinatorConfig{
				Address: "mem://coordinator",
				RNG:     rand.New(rand.NewSource(tc.seed)),
			})
			bus.Register("mem://coordinator", coord.Handler())

			valueRNG := rand.New(rand.NewSource(tc.seed * 7))
			var truthSum, truthMax float64
			truthMax = math.Inf(-1)
			var runners []*core.Runner
			defer func() {
				for _, r := range runners {
					r.Stop()
				}
			}()
			startRunner := func(svc interface{ Tick(context.Context) }, seed int64) {
				t.Helper()
				r, err := core.NewRunner(core.RunnerConfig{
					Clock:          clk,
					RNG:            rand.New(rand.NewSource(seed)),
					Aggregator:     svc,
					AggregateEvery: exchangeEvery,
					JitterFrac:     0.2,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Start(ctx); err != nil {
					t.Fatal(err)
				}
				runners = append(runners, r)
			}
			for i := 0; i < tc.n; i++ {
				addr := fmt.Sprintf("mem://svc%03d", i)
				v := 10 + valueRNG.Float64()*90
				truthSum += v
				truthMax = math.Max(truthMax, v)
				val := v
				svc, err := aggregate.NewService(aggregate.ServiceConfig{
					Address: addr,
					Caller:  bus,
					Value:   func() float64 { return val },
					RNG:     rand.New(rand.NewSource(tc.seed*13 + int64(i))),
				})
				if err != nil {
					t.Fatal(err)
				}
				bus.Register(addr, svc.Handler())
				if err := core.SubscribeClient(ctx, bus, "mem://coordinator", addr,
					core.RoleDisseminator, core.ProtocolAggregate); err != nil {
					t.Fatal(err)
				}
				startRunner(svc, tc.seed*17+int64(i))
			}
			querier, err := aggregate.NewQuerier(aggregate.QuerierConfig{
				Address:    "mem://querier",
				Caller:     bus,
				Activation: "mem://coordinator",
				RNG:        rand.New(rand.NewSource(tc.seed * 19)),
			})
			if err != nil {
				t.Fatal(err)
			}
			bus.Register("mem://querier", querier.Handler())
			if err := core.SubscribeClient(ctx, bus, "mem://coordinator", "mem://querier",
				core.RoleDisseminator, core.ProtocolAggregate); err != nil {
				t.Fatal(err)
			}
			startRunner(querier, tc.seed*23)

			bus.SetLoss(tc.loss)
			task, err := querier.StartAggregation(ctx, tc.fn)
			if err != nil {
				t.Fatal(err)
			}
			analytic, err := epidemic.PushSumRoundsToEpsilon(tc.n+1, task.Params.Fanout, task.Params.Epsilon)
			if err != nil {
				t.Fatal(err)
			}
			budget := 2*analytic + 10
			windows := advanceUntil(clk, exchangeEvery, budget, func() bool {
				return querier.Converged(task.ID)
			})
			if windows > budget {
				t.Fatalf("aggregation not converged after %d windows (analytic %d)", budget, analytic)
			}

			var truth float64
			switch tc.fn {
			case aggregate.FuncAvg:
				// The querier participates without a value: passive node.
				truth = truthSum / float64(tc.n)
			case aggregate.FuncCount:
				truth = float64(tc.n)
			case aggregate.FuncMax:
				truth = truthMax
			}
			est, ok := querier.Estimate(task.ID)
			if !ok {
				t.Fatal("querier has no estimate after convergence")
			}
			tol := 0.02 // estimates stabilize before the last digits settle
			if tc.fn == aggregate.FuncMax {
				tol = 1e-9 // idempotent merge is exact
			}
			if rel := math.Abs(est-truth) / math.Max(math.Abs(truth), 1e-12); rel > tol {
				t.Fatalf("%s estimate %.6f vs truth %.6f (rel err %.3e > %.0e)", tc.fn, est, truth, rel, tol)
			}
			t.Logf("%s converged in %d windows (analytic ε-rounds %d, budget %d): estimate %.4f truth %.4f",
				tc.fn, windows, analytic, budget, est, truth)
		})
	}
}
