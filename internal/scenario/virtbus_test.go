package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/soap"
)

// virtBus is a SOAP binding for virtual-time scenario tests: one-way
// exchanges (the gossip traffic) ride the virtual clock with seeded link
// delay, seeded loss, and crash faults, while request-response exchanges
// (the WS-Coordination control plane) stay synchronous and reliable — the
// coordinator is not the component under stress here.
//
// All delivery callbacks fire inside clock.Virtual.Advance, so a scenario
// is one goroutine advancing time and asserting; there is nothing to await.
type virtBus struct {
	clk *clock.Virtual

	mu       sync.Mutex
	rng      *rand.Rand
	handlers map[string]soap.Handler
	down     map[string]bool
	loss     float64
	minDelay time.Duration
	maxDelay time.Duration

	sent, dropped, delivered int
}

var (
	_ soap.Caller        = (*virtBus)(nil)
	_ soap.EncodedSender = (*virtBus)(nil)
)

func newVirtBus(clk *clock.Virtual, seed int64, minDelay, maxDelay time.Duration) *virtBus {
	if maxDelay < minDelay {
		maxDelay = minDelay
	}
	return &virtBus{
		clk:      clk,
		rng:      rand.New(rand.NewSource(seed)),
		handlers: make(map[string]soap.Handler),
		down:     make(map[string]bool),
		minDelay: minDelay,
		maxDelay: maxDelay,
	}
}

func (b *virtBus) Register(addr string, h soap.Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers[addr] = h
}

// Crash marks addr down: its inbound messages are dropped, including ones
// already in flight.
func (b *virtBus) Crash(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down[addr] = true
}

// SetLoss changes the one-way message loss probability.
func (b *virtBus) SetLoss(p float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loss = p
}

// Stats returns (sent, dropped, delivered) one-way message counts.
func (b *virtBus) Stats() (sent, dropped, delivered int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sent, b.dropped, b.delivered
}

// Call is the reliable, synchronous control plane (Activation,
// Registration, Subscribe, estimate queries).
func (b *virtBus) Call(ctx context.Context, to string, env *soap.Envelope) (*soap.Envelope, error) {
	b.mu.Lock()
	h := b.handlers[to]
	down := b.down[to]
	b.mu.Unlock()
	if h == nil || down {
		return nil, fmt.Errorf("virtbus: unreachable endpoint %s", to)
	}
	data, err := env.Encode()
	if err != nil {
		return nil, err
	}
	decoded, err := soap.Decode(data)
	if err != nil {
		return nil, err
	}
	resp, err := h.HandleSOAP(ctx, &soap.Request{Envelope: decoded, Remote: "virtbus"})
	if err != nil {
		return nil, soap.AsFault(err)
	}
	if f := soap.FaultFrom(resp); f != nil {
		return nil, f
	}
	return resp, nil
}

// Send is the lossy, delayed one-way path every gossip exchange takes.
func (b *virtBus) Send(ctx context.Context, to string, env *soap.Envelope) error {
	data, err := env.Encode()
	if err != nil {
		return err
	}
	return b.SendEncoded(ctx, to, data)
}

// SendEncoded implements the encode-once fan-out path.
func (b *virtBus) SendEncoded(_ context.Context, to string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.handlers[to] == nil {
		return fmt.Errorf("virtbus: unknown endpoint %s", to)
	}
	b.sent++
	if b.down[to] || b.rng.Float64() < b.loss {
		b.dropped++
		return nil
	}
	delay := b.minDelay
	if span := b.maxDelay - b.minDelay; span > 0 {
		delay += time.Duration(b.rng.Int63n(int64(span) + 1))
	}
	b.clk.AfterFunc(delay, func() {
		b.mu.Lock()
		h := b.handlers[to]
		down := b.down[to]
		b.mu.Unlock()
		if h == nil || down {
			b.mu.Lock()
			b.dropped++
			b.mu.Unlock()
			return
		}
		decoded, err := soap.Decode(data)
		if err != nil {
			return
		}
		b.mu.Lock()
		b.delivered++
		b.mu.Unlock()
		// One-way semantics: handler errors vanish, as over HTTP 202.
		_, _ = h.HandleSOAP(context.Background(), &soap.Request{Envelope: decoded, Remote: "virtbus"})
	})
	return nil
}
