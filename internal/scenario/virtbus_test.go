package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/faults"
	"wsgossip/internal/soap"
)

// virtBus is a SOAP binding for virtual-time scenario tests: one-way
// exchanges (the gossip traffic) ride the virtual clock with seeded link
// delay, seeded loss, and crash faults, while request-response exchanges
// (the WS-Coordination control plane) stay synchronous and reliable — the
// coordinator is not the component under stress here.
//
// All delivery callbacks fire inside clock.Virtual.Advance, so a scenario
// is one goroutine advancing time and asserting; there is nothing to await.
type virtBus struct {
	clk *clock.Virtual

	mu       sync.Mutex
	rng      *rand.Rand
	handlers map[string]soap.Handler
	down     map[string]bool
	minDelay time.Duration
	maxDelay time.Duration
	// faults rules on every one-way send: refuse rules fail matching sends
	// synchronously with a connection-refused transport error (the signal a
	// sender's delivery plane retries and eventually circuit-breaks on),
	// while cut/partition/loss rules swallow the message after a successful
	// send. Rules only see a sender when the message went through a
	// nodeCaller (which stamps its origin); unstamped sends pass "".
	faults *faults.Table
	// sync, when true, delivers one-way sends inline (no link delay) and
	// returns the handler's error to the sender — the behaviour of a
	// synchronous HTTP binding, where a shedding receiver's retry-after
	// fault comes back as the POST response. The bus mutex is released
	// during delivery so handlers may send onward.
	sync bool

	sent, dropped, delivered, refused int
}

var (
	_ soap.Caller        = (*virtBus)(nil)
	_ soap.EncodedSender = (*virtBus)(nil)
)

func newVirtBus(clk *clock.Virtual, seed int64, minDelay, maxDelay time.Duration) *virtBus {
	if maxDelay < minDelay {
		maxDelay = minDelay
	}
	return &virtBus{
		clk:      clk,
		rng:      rand.New(rand.NewSource(seed)),
		handlers: make(map[string]soap.Handler),
		down:     make(map[string]bool),
		minDelay: minDelay,
		maxDelay: maxDelay,
		faults:   faults.NewTable(),
	}
}

func (b *virtBus) Register(addr string, h soap.Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers[addr] = h
}

// Crash marks addr down: its inbound messages are dropped, including ones
// already in flight.
func (b *virtBus) Crash(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down[addr] = true
}

// Recover clears a crash: addr receives traffic again. With Crash it forms
// the churn surface a faults.Plan drives through its Applier.
func (b *virtBus) Recover(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.down, addr)
}

// Faults exposes the bus's fault table: the full directional rule set —
// cuts, NAT, per-link loss and delay, named rules, fault plans — beyond
// the predicate shorthands below.
func (b *virtBus) Faults() *faults.Table { return b.faults }

// SetLoss changes the one-way message loss probability.
func (b *virtBus) SetLoss(p float64) { b.faults.SetLoss(p) }

// SetPartition installs (or, with nil, heals) a link-level partition over
// the one-way gossip path. The control plane (Call) stays connected: the
// coordinator is not the component under stress.
func (b *virtBus) SetPartition(p func(from, to string) bool) {
	b.faults.SetPartitionFunc(p)
}

// SetRefuse installs (or, with nil, heals) a link-level connection fault:
// matching one-way sends fail synchronously back to the sender.
func (b *virtBus) SetRefuse(f func(from, to string) bool) {
	b.faults.SetRefuseFunc(f)
}

// SetSync switches one-way delivery between the default delayed/lossy mode
// and the synchronous fault-propagating mode.
func (b *virtBus) SetSync(on bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sync = on
}

// Stats returns (sent, dropped, delivered) one-way message counts.
func (b *virtBus) Stats() (sent, dropped, delivered int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sent, b.dropped, b.delivered
}

// Refused returns how many one-way sends the refuse hook failed.
func (b *virtBus) Refused() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.refused
}

// Call is the reliable, synchronous control plane (Activation,
// Registration, Subscribe, estimate queries).
func (b *virtBus) Call(ctx context.Context, to string, env *soap.Envelope) (*soap.Envelope, error) {
	b.mu.Lock()
	h := b.handlers[to]
	down := b.down[to]
	b.mu.Unlock()
	if h == nil || down {
		return nil, fmt.Errorf("virtbus: unreachable endpoint %s", to)
	}
	data, err := env.Encode()
	if err != nil {
		return nil, err
	}
	decoded, err := soap.Decode(data)
	if err != nil {
		return nil, err
	}
	resp, err := h.HandleSOAP(ctx, &soap.Request{Envelope: decoded, Remote: "virtbus"})
	if err != nil {
		return nil, soap.AsFault(err)
	}
	if f := soap.FaultFrom(resp); f != nil {
		return nil, f
	}
	return resp, nil
}

// Send is the lossy, delayed one-way path every gossip exchange takes.
func (b *virtBus) Send(ctx context.Context, to string, env *soap.Envelope) error {
	data, err := env.Encode()
	if err != nil {
		return err
	}
	return b.SendEncoded(ctx, to, data)
}

// SendEncoded implements the encode-once fan-out path.
func (b *virtBus) SendEncoded(ctx context.Context, to string, data []byte) error {
	return b.sendEncodedFrom(ctx, "", to, data)
}

// sendEncodedFrom is SendEncoded with a sender identity, so an installed
// partition or refuse hook can rule on the (from, to) link.
func (b *virtBus) sendEncodedFrom(_ context.Context, from, to string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.handlers[to]
	if h == nil {
		return fmt.Errorf("virtbus: unknown endpoint %s", to)
	}
	b.sent++
	switch d := b.faults.Check(from, to); d.Outcome {
	case faults.Refuse:
		b.refused++
		return fmt.Errorf("virtbus: connection refused: %s -> %s", from, to)
	case faults.Drop:
		b.dropped++
		return nil
	}
	if b.down[to] {
		b.dropped++
		return nil
	}
	if b.faults.Lossy(from, to, b.rng) {
		b.dropped++
		return nil
	}
	if b.sync {
		decoded, err := soap.Decode(data)
		if err != nil {
			return err
		}
		b.delivered++
		b.mu.Unlock()
		defer b.mu.Lock() // re-balance the deferred Unlock above
		_, err = h.HandleSOAP(context.Background(), &soap.Request{Envelope: decoded, Remote: "virtbus"})
		return err
	}
	delay := b.minDelay
	if span := b.maxDelay - b.minDelay; span > 0 {
		delay += time.Duration(b.rng.Int63n(int64(span) + 1))
	}
	delay += b.faults.ExtraDelay(from, to)
	b.clk.AfterFunc(delay, func() {
		b.mu.Lock()
		h := b.handlers[to]
		down := b.down[to]
		b.mu.Unlock()
		if h == nil || down {
			b.mu.Lock()
			b.dropped++
			b.mu.Unlock()
			return
		}
		decoded, err := soap.Decode(data)
		if err != nil {
			return
		}
		b.mu.Lock()
		b.delivered++
		b.mu.Unlock()
		// One-way semantics: handler errors vanish, as over HTTP 202.
		_, _ = h.HandleSOAP(context.Background(), &soap.Request{Envelope: decoded, Remote: "virtbus"})
	})
	return nil
}

// nodeCaller binds a bus to one node's address so one-way sends carry their
// origin — the hook partition rules need. Request-response calls delegate
// unstamped (the control plane ignores partitions anyway).
type nodeCaller struct {
	bus  *virtBus
	from string
}

var (
	_ soap.Caller        = (*nodeCaller)(nil)
	_ soap.EncodedSender = (*nodeCaller)(nil)
)

func (c *nodeCaller) Call(ctx context.Context, to string, env *soap.Envelope) (*soap.Envelope, error) {
	return c.bus.Call(ctx, to, env)
}

func (c *nodeCaller) Send(ctx context.Context, to string, env *soap.Envelope) error {
	data, err := env.Encode()
	if err != nil {
		return err
	}
	return c.bus.sendEncodedFrom(ctx, c.from, to, data)
}

func (c *nodeCaller) SendEncoded(ctx context.Context, to string, data []byte) error {
	return c.bus.sendEncodedFrom(ctx, c.from, to, data)
}
