// Package simnet is a deterministic discrete-event network simulator. It
// provides transport.Endpoint attachments for protocol nodes, a virtual
// clock, and fault injection (message loss, crash faults, partitions,
// per-node slowdown). All randomness flows from a single seeded source and
// events are totally ordered by (time, sequence), so every experiment is
// exactly reproducible.
//
// The WS-Gossip paper claims behaviour at "very large numbers of services";
// simnet is the substitute for the testbed we do not have (see DESIGN.md §2):
// the protocol code above the transport interface is identical to the code
// that runs over SOAP/HTTP.
//
// Key types: Network (the fabric: Node/Crash/Partition/SetLossRate, with
// Run/RunFor/Step driving the event loop) and Node (one
// transport.Endpoint). A Network schedules on a clock.Virtual — its own, or
// one shared with core.Runner timers via NewOnClock, so thousands of
// self-clocking nodes and their link latencies interleave on a single
// deterministic timeline.
//
// Failure semantics distinguish transient from permanent absence. Crash is
// transient: in-flight deliveries keep their timers and land if the node
// Recovers before they arrive. Depart is permanent (a churn leave): messages
// to a departed node are dropped at enqueue time, after consuming the same
// loss and latency draws a live destination would have, so survivors' random
// streams are unaffected while the timer queue carries no deliveries into
// dead nodes — the property that lets churn runs scale to 10^5-10^6 nodes.
// NewCompactRNG supplies a 16-byte splitmix64 rand.Rand for per-node state
// at that scale (math/rand's default source is ~5 KiB per instance).
package simnet
