// Package simnet is a deterministic discrete-event network simulator. It
// provides transport.Endpoint attachments for protocol nodes, a virtual
// clock, and fault injection (message loss, crash faults, partitions,
// per-node slowdown). All randomness flows from a single seeded source and
// events are totally ordered by (time, sequence), so every experiment is
// exactly reproducible.
//
// The WS-Gossip paper claims behaviour at "very large numbers of services";
// simnet is the substitute for the testbed we do not have (see DESIGN.md §2):
// the protocol code above the transport interface is identical to the code
// that runs over SOAP/HTTP.
//
// Key types: Network (the fabric: Node/Crash/Partition/SetLossRate, with
// Run/RunFor/Step driving the event loop) and Node (one
// transport.Endpoint). A Network schedules on a clock.Virtual — its own, or
// one shared with core.Runner timers via NewOnClock, so thousands of
// self-clocking nodes and their link latencies interleave on a single
// deterministic timeline.
package simnet
