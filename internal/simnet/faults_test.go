package simnet

import (
	"context"
	"testing"
	"time"

	"wsgossip/internal/faults"
	"wsgossip/internal/transport"
)

// faultRig is a three-node network with a fault table installed and
// per-node delivery counts.
type faultRig struct {
	net   *Network
	tbl   *faults.Table
	nodes map[string]*Node
	recvd map[string]int
}

func newFaultRig(t *testing.T, seed int64) *faultRig {
	t.Helper()
	r := &faultRig{
		net:   New(lossless(seed)),
		tbl:   faults.NewTable(),
		nodes: map[string]*Node{},
		recvd: map[string]int{},
	}
	r.net.SetFaults(r.tbl)
	for _, a := range []string{"a", "b", "c"} {
		a := a
		r.nodes[a] = r.net.Node(a)
		r.nodes[a].SetHandler(func(context.Context, transport.Message) error {
			r.recvd[a]++
			return nil
		})
	}
	return r
}

func (r *faultRig) send(t *testing.T, from, to string) error {
	t.Helper()
	return r.nodes[from].Send(context.Background(), transport.Message{To: to, Action: "x", Body: []byte("m")})
}

// TestFaultTableRefuseAndDrop checks the two table outcomes surface
// correctly: refusals are synchronous errors, cuts are silent drops, and
// both are accounted exactly — network stats match table totals.
func TestFaultTableRefuseAndDrop(t *testing.T) {
	r := newFaultRig(t, 1)
	r.tbl.RefuseLink("ref", []string{"a"}, []string{"b"})
	r.tbl.Cut("cut", []string{"a"}, []string{"c"})

	if err := r.send(t, "a", "b"); err == nil {
		t.Fatal("refused link returned nil")
	}
	if err := r.send(t, "a", "c"); err != nil {
		t.Fatalf("cut link must drop silently, got %v", err)
	}
	// Untouched directions still deliver.
	if err := r.send(t, "b", "a"); err != nil {
		t.Fatal(err)
	}
	r.net.Run()
	if r.recvd["a"] != 1 || r.recvd["b"] != 0 || r.recvd["c"] != 0 {
		t.Fatalf("recvd = %v", r.recvd)
	}
	st := r.net.Stats()
	if st.FaultRefused != 1 || st.FaultDropped != 1 {
		t.Fatalf("stats = %+v, want 1 refused / 1 fault-dropped", st)
	}
	tot := r.tbl.Totals()
	if tot.Refused != st.FaultRefused || tot.Dropped+tot.Lost != st.FaultDropped {
		t.Fatalf("table totals %+v disagree with network stats %+v", tot, st)
	}
}

// TestFaultTableNATRelays checks NAT semantics on the fabric: only relay
// senders reach the NAT'd node; everyone else gets connection-refused.
func TestFaultTableNATRelays(t *testing.T) {
	r := newFaultRig(t, 2)
	r.tbl.SetNAT("c", "b")

	if err := r.send(t, "a", "c"); err == nil {
		t.Fatal("non-relay reached the NAT'd node")
	}
	if err := r.send(t, "b", "c"); err != nil {
		t.Fatalf("relay -> NAT'd: %v", err)
	}
	if err := r.send(t, "c", "a"); err != nil {
		t.Fatalf("NAT'd outbound: %v", err)
	}
	r.net.Run()
	if r.recvd["c"] != 1 || r.recvd["a"] != 1 {
		t.Fatalf("recvd = %v", r.recvd)
	}
	if st := r.net.Stats(); st.FaultRefused != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFaultLinkLossAndDelay checks probabilistic directional loss and
// extra one-way latency.
func TestFaultLinkLossAndDelay(t *testing.T) {
	r := newFaultRig(t, 3)
	r.tbl.LinkLoss("ll", []string{"a"}, []string{"b"}, 1) // certain loss a->b
	r.tbl.LinkDelay("ld", []string{"b"}, []string{"a"}, 50*time.Millisecond)

	if err := r.send(t, "a", "b"); err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	r.nodes["a"].SetHandler(func(context.Context, transport.Message) error {
		at = r.net.Now()
		return nil
	})
	if err := r.send(t, "b", "a"); err != nil {
		t.Fatal(err)
	}
	r.net.Run()
	if r.recvd["b"] != 0 {
		t.Fatalf("p=1 link loss delivered: %v", r.recvd)
	}
	if at < 50*time.Millisecond {
		t.Fatalf("delivery at %v, want >= the 50ms fault delay", at)
	}
	if st := r.net.Stats(); st.FaultDropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFaultPlanOverNetwork schedules a parsed plan (including crash and
// recover ops bound to the network) on the network clock and replays it
// twice, requiring identical stats — the property the simulator's
// byte-identical-report check rests on.
func TestFaultPlanOverNetwork(t *testing.T) {
	const src = `
10ms cut a->b name=ab
20ms crash c
30ms recover c
40ms heal ab
`
	run := func() (Stats, map[string]int64) {
		r := newFaultRig(t, 4)
		plan, err := faults.ParsePlan(src)
		if err != nil {
			t.Fatal(err)
		}
		err = plan.Schedule(r.net.Clock(), faults.Applier{
			Table:   r.tbl,
			Crash:   r.net.Crash,
			Recover: r.net.Recover,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			r.net.RunFor(10 * time.Millisecond)
			_ = r.send(t, "a", "b")
			_ = r.send(t, "c", "a")
		}
		r.net.Run()
		return r.net.Stats(), r.tbl.Counts()
	}
	st1, c1 := run()
	st2, c2 := run()
	if st1 != st2 {
		t.Fatalf("stats differ across replays: %+v vs %+v", st1, st2)
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("count %q differs: %d vs %d", k, v, c2[k])
		}
	}
	if st1.FaultDropped == 0 {
		t.Fatal("plan dropped nothing; the determinism check proved nothing")
	}
	// While crashed, c's sends fail; after recovery they deliver again.
	if st1.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestEmptyFaultTableIsTransparent pins that an installed-but-empty table
// does not change delivery outcomes under global loss: the table consumes
// one extra draw per send from the shared RNG (documented on SetFaults),
// but refuses and drops nothing of its own, and two identical runs stay
// deterministic.
func TestEmptyFaultTableIsTransparent(t *testing.T) {
	run := func() Stats {
		net := New(Config{Seed: 9, MinLatency: time.Millisecond, MaxLatency: 5 * time.Millisecond, LossRate: 0.3})
		net.SetFaults(faults.NewTable())
		a := net.Node("a")
		net.Node("b").SetHandler(func(context.Context, transport.Message) error { return nil })
		for i := 0; i < 200; i++ {
			_ = a.Send(context.Background(), transport.Message{To: "b"})
		}
		net.Run()
		return net.Stats()
	}
	st1 := run()
	st2 := run()
	if st1 != st2 {
		t.Fatalf("runs differ: %+v vs %+v", st1, st2)
	}
	if st1.FaultRefused != 0 || st1.FaultDropped != 0 {
		t.Fatalf("empty table touched traffic: %+v", st1)
	}
	if st1.Dropped == 0 || st1.Delivered == 0 {
		t.Fatalf("loss rate exercised nothing: %+v", st1)
	}
}
