package simnet

import "math/rand"

// compactSource is a splitmix64 rand.Source64. The default math/rand source
// carries a ~5 KiB lagged-Fibonacci arena per instance — the single largest
// per-node allocation when a simulated population holds one RNG per node. At
// N=1M that is ~5 GiB of RNG state alone; splitmix64 holds 8 bytes and has
// more than enough statistical quality for protocol jitter and peer picks.
//
// Streams differ from math/rand's, so compact RNGs are used only by the
// scale experiments (ScaleCoverage/ScaleChurn, wsgossip-sim -exp); the
// legacy experiment and scenario paths keep rand.NewSource streams so their
// outputs stay byte-identical across this change.
type compactSource struct {
	state uint64
}

// NewCompactRNG returns a rand.Rand on 16 bytes of splitmix64 state.
// Deterministic per seed; not safe for concurrent use (same contract as
// rand.New).
func NewCompactRNG(seed int64) *rand.Rand {
	return rand.New(&compactSource{state: uint64(seed)})
}

func (s *compactSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *compactSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed reinitializes the stream (rand.Source interface).
func (s *compactSource) Seed(seed int64) {
	s.state = uint64(seed)
}
