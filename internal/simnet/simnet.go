package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/faults"
	"wsgossip/internal/transport"
)

// Config controls link and node behaviour.
type Config struct {
	// Seed initializes the simulation RNG. Two runs with equal seeds and
	// equal workloads produce identical event sequences.
	Seed int64
	// MinLatency and MaxLatency bound per-message link delay (uniform).
	MinLatency time.Duration
	MaxLatency time.Duration
	// LossRate is the probability in [0,1] that any message is dropped.
	LossRate float64
	// ProcDelay is added to delivery time per message at the receiver,
	// modeling service processing cost.
	ProcDelay time.Duration
}

// DefaultConfig returns a LAN-like configuration: 1-5 ms links, no loss.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:       seed,
		MinLatency: time.Millisecond,
		MaxLatency: 5 * time.Millisecond,
	}
}

// Stats aggregates network-level observations for an experiment run.
type Stats struct {
	Sent      int64
	Delivered int64
	Dropped   int64
	Bytes     int64
	// FaultRefused counts sends refused synchronously by the fault table
	// (refuse rules and NAT) — the sender saw a connection error.
	FaultRefused int64
	// FaultDropped counts sends silently dropped by the fault table (cut,
	// partition, and link-loss rules). Also included in Dropped.
	FaultDropped int64
}

// Network is the simulated fabric. Scheduling rides on a clock.Virtual —
// the network's own by default, or one shared with other timelines (a
// core.Runner's round timers, another network) via NewOnClock, so protocol
// timers and message deliveries interleave on a single deterministic event
// order. Handlers execute inside the goroutine that drives Run/Step/RunFor.
// The mutex guards cross-goroutine inspection of stats and topology.
type Network struct {
	cfg Config
	clk *clock.Virtual

	mu        sync.Mutex
	rng       *rand.Rand
	nodes     map[string]*Node
	crashed   map[string]bool
	departed  map[string]bool
	slowdown  map[string]time.Duration
	partition map[string]int // addr -> group id; absent means group 0
	split     bool
	lossRate  float64
	faults    *faults.Table
	stats     Stats
}

// New returns an empty network with the given configuration, on its own
// virtual clock.
func New(cfg Config) *Network {
	return NewOnClock(cfg, clock.NewVirtual())
}

// NewOnClock returns an empty network scheduling on clk. Attach protocol
// runtimes (core.Runner) to the same clock to run self-clocking nodes and
// the fabric on one shared virtual timeline.
func NewOnClock(cfg Config, clk *clock.Virtual) *Network {
	if cfg.MaxLatency < cfg.MinLatency {
		cfg.MaxLatency = cfg.MinLatency
	}
	return &Network{
		cfg:       cfg,
		clk:       clk,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		nodes:     make(map[string]*Node),
		crashed:   make(map[string]bool),
		departed:  make(map[string]bool),
		slowdown:  make(map[string]time.Duration),
		partition: make(map[string]int),
		lossRate:  cfg.LossRate,
	}
}

var _ transport.Clock = (*Network)(nil)

// Clock returns the virtual clock the network schedules on.
func (n *Network) Clock() *clock.Virtual { return n.clk }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.clk.Now() }

// AfterFunc schedules fn at now+d on the virtual clock.
func (n *Network) AfterFunc(d time.Duration, fn func()) func() bool {
	return n.clk.AfterFunc(d, fn)
}

// Node returns the endpoint for addr, creating it on first use.
func (n *Network) Node(addr string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if node, ok := n.nodes[addr]; ok {
		return node
	}
	node := &Node{net: n, addr: addr}
	n.nodes[addr] = node
	return node
}

// Addrs returns all node addresses (including crashed ones).
func (n *Network) Addrs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nodes))
	for a := range n.nodes {
		out = append(out, a)
	}
	return out
}

// Crash marks addr as crashed: its in-flight deliveries are dropped on
// arrival and it cannot send.
func (n *Network) Crash(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[addr] = true
}

// Depart marks addr as permanently gone (a churn leave, as opposed to a
// transient Crash). Like a crashed node it cannot send and receives nothing,
// but the distinction matters for the event queue: messages addressed to a
// departed node are dropped at enqueue time, before a delivery timer is
// scheduled, so a large churned-out population does not fill the timer queue
// with deliveries destined for dead nodes. The link RNG draws (loss, latency)
// are still consumed, so runs with and without the enqueue-time drop see
// identical random streams for the surviving traffic.
func (n *Network) Depart(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[addr] = true
	n.departed[addr] = true
}

// Recover clears the crash flag for addr. Recovering a departed node
// re-admits it (rejoin as the same endpoint): both flags clear.
func (n *Network) Recover(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, addr)
	delete(n.departed, addr)
}

// Crashed reports whether addr is currently crashed (or departed).
func (n *Network) Crashed(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[addr]
}

// Departed reports whether addr has permanently left.
func (n *Network) Departed(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.departed[addr]
}

// SetFaults installs (or, with nil, removes) a fault table consulted on
// every send. A nil or inactive table leaves the network's behaviour and
// seeded random stream exactly as before: the table's link-loss evaluation
// costs one RNG draw per send only while a table is installed, so
// no-faults runs stay byte-identical to pre-fault builds.
func (n *Network) SetFaults(t *faults.Table) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = t
}

// Faults returns the installed fault table, or nil.
func (n *Network) Faults() *faults.Table {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.faults
}

// SetLossRate changes the global message loss probability.
func (n *Network) SetLossRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = rate
}

// SetSlowdown adds extra per-message processing delay at addr, modeling the
// perturbed ("slow") nodes of the Bimodal Multicast experiment.
func (n *Network) SetSlowdown(addr string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d <= 0 {
		delete(n.slowdown, addr)
		return
	}
	n.slowdown[addr] = d
}

// Partition splits the network: nodes in group receive group id 1, all
// others stay in group 0; messages cross groups only after Heal.
func (n *Network) Partition(group []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int, len(group))
	for _, a := range group {
		n.partition[a] = 1
	}
	n.split = true
}

// Heal removes any partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.split = false
	n.partition = make(map[string]int)
}

// Stats returns a copy of the aggregate counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// ResetStats zeroes the aggregate counters.
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
}

// Step executes the next pending event and reports whether one existed.
func (n *Network) Step() bool { return n.clk.Step() }

// Run drains all pending events (including ones scheduled while draining).
// With self-rescheduling timers on the shared clock — a core.Runner's round
// loops — it never returns; drive those timelines with RunFor/RunUntil.
func (n *Network) Run() { n.clk.Run() }

// RunFor drains events with timestamps up to now+d, then advances the clock
// to exactly now+d.
func (n *Network) RunFor(d time.Duration) { n.clk.Advance(d) }

// RunUntil drains events with timestamps up to the absolute virtual time t,
// then sets the clock to t.
func (n *Network) RunUntil(t time.Duration) { n.clk.RunUntil(t) }

// Pending reports the number of undelivered events (including cancelled
// timer slots not yet popped) on the network's clock.
func (n *Network) Pending() int { return n.clk.Pending() }

func (n *Network) reachableLocked(from, to string) bool {
	if !n.split {
		return true
	}
	return n.partition[from] == n.partition[to]
}

// send implements the link model: loss, partition, crash, latency.
func (n *Network) send(from string, msg transport.Message) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed[from] {
		return fmt.Errorf("%w: sender %s crashed", transport.ErrUnreachable, from)
	}
	dest, ok := n.nodes[msg.To]
	if !ok {
		n.stats.Dropped++
		return fmt.Errorf("%w: %s", transport.ErrUnreachable, msg.To)
	}
	n.stats.Sent++
	n.stats.Bytes += int64(len(msg.Body))
	if n.faults != nil {
		switch d := n.faults.Check(from, msg.To); d.Outcome {
		case faults.Refuse:
			n.stats.FaultRefused++
			return fmt.Errorf("%w: connection refused: %s -> %s", transport.ErrUnreachable, from, msg.To)
		case faults.Drop:
			n.stats.FaultDropped++
			n.stats.Dropped++
			return nil
		}
	}
	if !n.reachableLocked(from, msg.To) || n.rng.Float64() < n.lossRate {
		n.stats.Dropped++
		return nil
	}
	if n.faults != nil && n.faults.Lossy(from, msg.To, n.rng) {
		n.stats.FaultDropped++
		n.stats.Dropped++
		return nil
	}
	latency := n.cfg.MinLatency
	if span := n.cfg.MaxLatency - n.cfg.MinLatency; span > 0 {
		latency += time.Duration(n.rng.Int63n(int64(span) + 1))
	}
	if n.departed[msg.To] {
		// Departed (vs transiently crashed) nodes never come back for this
		// message: drop at enqueue instead of scheduling a delivery timer
		// into a dead node. The loss and latency draws above have already
		// been consumed, so the RNG stream seen by surviving traffic is
		// identical to a run without the early drop.
		n.stats.Dropped++
		return nil
	}
	latency += n.cfg.ProcDelay + n.slowdown[msg.To]
	if n.faults != nil {
		latency += n.faults.ExtraDelay(from, msg.To)
	}
	msg.From = from
	n.clk.AfterFunc(latency, func() {
		n.deliver(dest, msg)
	})
	return nil
}

func (n *Network) deliver(dest *Node, msg transport.Message) {
	n.mu.Lock()
	if n.crashed[dest.addr] {
		n.stats.Dropped++
		n.mu.Unlock()
		return
	}
	h := dest.handler
	n.stats.Delivered++
	n.mu.Unlock()
	if h == nil {
		return
	}
	// Handler errors are protocol-level; the network, like UDP, ignores them.
	_ = h(context.Background(), msg)
}

// Node is one simulated endpoint.
type Node struct {
	net     *Network
	addr    string
	handler transport.Handler
}

var _ transport.Endpoint = (*Node)(nil)

// Addr returns the node's address.
func (nd *Node) Addr() string { return nd.addr }

// SetHandler installs the inbound handler.
func (nd *Node) SetHandler(h transport.Handler) {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	nd.handler = h
}

// Send transmits msg through the simulated fabric.
func (nd *Node) Send(_ context.Context, msg transport.Message) error {
	return nd.net.send(nd.addr, msg)
}

// RNG exposes the simulation's seeded random source so protocols share one
// deterministic stream. Use only from the event loop goroutine.
func (n *Network) RNG() *rand.Rand { return n.rng }
