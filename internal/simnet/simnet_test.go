package simnet

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"wsgossip/internal/transport"
)

func lossless(seed int64) Config {
	return Config{Seed: seed, MinLatency: time.Millisecond, MaxLatency: 5 * time.Millisecond}
}

func TestDeliverySingleMessage(t *testing.T) {
	net := New(lossless(1))
	a := net.Node("a")
	b := net.Node("b")
	var got []string
	b.SetHandler(func(_ context.Context, msg transport.Message) error {
		got = append(got, string(msg.Body))
		if msg.From != "a" {
			t.Errorf("from = %q", msg.From)
		}
		return nil
	})
	if err := a.Send(context.Background(), transport.Message{To: "b", Action: "x", Body: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	net.Run()
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got = %v", got)
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSendToUnknownAddress(t *testing.T) {
	net := New(lossless(1))
	a := net.Node("a")
	err := a.Send(context.Background(), transport.Message{To: "ghost", Action: "x"})
	if err == nil {
		t.Fatal("send to unknown address succeeded")
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	net := New(Config{Seed: 1, MinLatency: 10 * time.Millisecond, MaxLatency: 10 * time.Millisecond})
	a := net.Node("a")
	b := net.Node("b")
	var at time.Duration
	b.SetHandler(func(context.Context, transport.Message) error {
		at = net.Now()
		return nil
	})
	_ = a.Send(context.Background(), transport.Message{To: "b"})
	net.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("delivery time = %v, want 10ms", at)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []string {
		net := New(Config{Seed: seed, MinLatency: time.Millisecond, MaxLatency: 20 * time.Millisecond, LossRate: 0.2})
		var order []string
		mk := func(name string) *Node {
			n := net.Node(name)
			n.SetHandler(func(_ context.Context, msg transport.Message) error {
				order = append(order, name+"<-"+msg.From)
				return nil
			})
			return n
		}
		nodes := []*Node{mk("a"), mk("b"), mk("c"), mk("d")}
		for i, from := range nodes {
			for j := range nodes {
				if i == j {
					continue
				}
				_ = from.Send(context.Background(), transport.Message{To: nodes[j].Addr()})
			}
		}
		net.Run()
		return order
	}
	o1 := run(42)
	o2 := run(42)
	if len(o1) != len(o2) {
		t.Fatalf("lengths differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("order diverges at %d: %q vs %q", i, o1[i], o2[i])
		}
	}
	o3 := run(43)
	same := len(o1) == len(o3)
	if same {
		for i := range o1 {
			if o1[i] != o3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("different seeds produced identical orders (possible but unlikely)")
	}
}

func TestLossRate(t *testing.T) {
	net := New(Config{Seed: 7, MinLatency: time.Millisecond, MaxLatency: time.Millisecond, LossRate: 0.5})
	a := net.Node("a")
	b := net.Node("b")
	delivered := 0
	b.SetHandler(func(context.Context, transport.Message) error {
		delivered++
		return nil
	})
	const total = 2000
	for i := 0; i < total; i++ {
		_ = a.Send(context.Background(), transport.Message{To: "b"})
	}
	net.Run()
	frac := float64(delivered) / total
	if frac < 0.44 || frac > 0.56 {
		t.Fatalf("delivered fraction = %v, want ~0.5", frac)
	}
}

func TestCrashDropsDeliveries(t *testing.T) {
	net := New(lossless(1))
	a := net.Node("a")
	b := net.Node("b")
	delivered := 0
	b.SetHandler(func(context.Context, transport.Message) error {
		delivered++
		return nil
	})
	net.Crash("b")
	_ = a.Send(context.Background(), transport.Message{To: "b"})
	net.Run()
	if delivered != 0 {
		t.Fatal("crashed node received a message")
	}
	if err := a.Send(context.Background(), transport.Message{To: "b"}); err != nil {
		t.Fatalf("send to crashed dest should be silent drop, got %v", err)
	}
	net.Run() // drain the in-flight message while b is still down
	net.Recover("b")
	_ = a.Send(context.Background(), transport.Message{To: "b"})
	net.Run()
	if delivered != 1 {
		t.Fatalf("delivered after recover = %d", delivered)
	}
}

func TestCrashedSenderCannotSend(t *testing.T) {
	net := New(lossless(1))
	a := net.Node("a")
	net.Node("b")
	net.Crash("a")
	if err := a.Send(context.Background(), transport.Message{To: "b"}); err == nil {
		t.Fatal("crashed sender could send")
	}
	if !net.Crashed("a") {
		t.Fatal("crashed flag not reported")
	}
}

func TestPartitionBlocksCrossGroupTraffic(t *testing.T) {
	net := New(lossless(1))
	a := net.Node("a")
	b := net.Node("b")
	c := net.Node("c")
	counts := map[string]int{}
	for _, n := range []*Node{a, b, c} {
		n := n
		n.SetHandler(func(context.Context, transport.Message) error {
			counts[n.Addr()]++
			return nil
		})
	}
	net.Partition([]string{"c"}) // {a,b} | {c}
	_ = a.Send(context.Background(), transport.Message{To: "b"})
	_ = a.Send(context.Background(), transport.Message{To: "c"})
	net.Run()
	if counts["b"] != 1 {
		t.Fatalf("same-side delivery failed: %v", counts)
	}
	if counts["c"] != 0 {
		t.Fatalf("cross-partition delivery occurred: %v", counts)
	}
	net.Heal()
	_ = a.Send(context.Background(), transport.Message{To: "c"})
	net.Run()
	if counts["c"] != 1 {
		t.Fatalf("post-heal delivery failed: %v", counts)
	}
}

func TestAfterFuncOrderingAndCancel(t *testing.T) {
	net := New(lossless(1))
	var fired []string
	net.AfterFunc(30*time.Millisecond, func() { fired = append(fired, "late") })
	net.AfterFunc(10*time.Millisecond, func() { fired = append(fired, "early") })
	stop := net.AfterFunc(20*time.Millisecond, func() { fired = append(fired, "cancelled") })
	if !stop() {
		t.Fatal("cancel failed")
	}
	if stop() {
		t.Fatal("double cancel succeeded")
	}
	net.Run()
	if len(fired) != 2 || fired[0] != "early" || fired[1] != "late" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunForStopsAtDeadline(t *testing.T) {
	net := New(lossless(1))
	var fired []string
	net.AfterFunc(10*time.Millisecond, func() { fired = append(fired, "in") })
	net.AfterFunc(100*time.Millisecond, func() { fired = append(fired, "out") })
	net.RunFor(50 * time.Millisecond)
	if len(fired) != 1 || fired[0] != "in" {
		t.Fatalf("fired = %v", fired)
	}
	if net.Now() != 50*time.Millisecond {
		t.Fatalf("now = %v, want 50ms", net.Now())
	}
	net.Run()
	if len(fired) != 2 {
		t.Fatalf("fired after full run = %v", fired)
	}
}

func TestReentrantSendFromHandler(t *testing.T) {
	net := New(lossless(1))
	a := net.Node("a")
	b := net.Node("b")
	c := net.Node("c")
	got := false
	b.SetHandler(func(ctx context.Context, msg transport.Message) error {
		return b.Send(ctx, transport.Message{To: "c", Body: msg.Body})
	})
	c.SetHandler(func(_ context.Context, msg transport.Message) error {
		got = string(msg.Body) == "relay"
		return nil
	})
	_ = a.Send(context.Background(), transport.Message{To: "b", Body: []byte("relay")})
	net.Run()
	if !got {
		t.Fatal("relayed message not delivered")
	}
}

func TestSlowdownDelaysDelivery(t *testing.T) {
	net := New(Config{Seed: 1, MinLatency: time.Millisecond, MaxLatency: time.Millisecond})
	a := net.Node("a")
	b := net.Node("b")
	var at time.Duration
	b.SetHandler(func(context.Context, transport.Message) error {
		at = net.Now()
		return nil
	})
	net.SetSlowdown("b", 100*time.Millisecond)
	_ = a.Send(context.Background(), transport.Message{To: "b"})
	net.Run()
	if at != 101*time.Millisecond {
		t.Fatalf("delivery at %v, want 101ms", at)
	}
	net.SetSlowdown("b", 0)
	_ = a.Send(context.Background(), transport.Message{To: "b"})
	net.Run()
	if at != 102*time.Millisecond {
		t.Fatalf("delivery at %v, want 102ms", at)
	}
}

// TestLatencyBoundsProperty: every delivery occurs within [min,max] of send.
func TestLatencyBoundsProperty(t *testing.T) {
	f := func(seed int64, minMs, spanMs uint8) bool {
		min := time.Duration(minMs) * time.Millisecond
		max := min + time.Duration(spanMs)*time.Millisecond
		net := New(Config{Seed: seed, MinLatency: min, MaxLatency: max})
		a := net.Node("a")
		b := net.Node("b")
		ok := true
		var sentAt time.Duration
		b.SetHandler(func(context.Context, transport.Message) error {
			d := net.Now() - sentAt
			if d < min || d > max {
				ok = false
			}
			return nil
		})
		for i := 0; i < 20; i++ {
			sentAt = net.Now()
			_ = a.Send(context.Background(), transport.Message{To: "b"})
			net.Run()
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestDepartDropsAtEnqueue pins the churn bugfix: a message to a departed
// node is dropped at send time — counted, but never scheduled as a delivery
// timer — while a transiently crashed node still gets an in-flight delivery
// that can land after Recover.
func TestDepartDropsAtEnqueue(t *testing.T) {
	net := New(lossless(1))
	a := net.Node("a")
	b := net.Node("b")
	delivered := 0
	b.SetHandler(func(context.Context, transport.Message) error {
		delivered++
		return nil
	})
	net.Depart("b")
	if !net.Crashed("b") || !net.Departed("b") {
		t.Fatal("departed node should report both Crashed and Departed")
	}
	if err := a.Send(context.Background(), transport.Message{To: "b"}); err != nil {
		t.Fatalf("send to departed dest should be silent drop, got %v", err)
	}
	if got := net.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after send to departed node, want 0 (no delivery timer)", got)
	}
	st := net.Stats()
	if st.Sent != 1 || st.Dropped != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want the enqueue-time drop counted", st)
	}
	net.Run()
	if delivered != 0 {
		t.Fatal("departed node received a message")
	}

	// Contrast: Crash keeps delivery-time semantics — the timer is scheduled
	// and the message lands if the node recovers before it arrives.
	net.Recover("b")
	net.Crash("b")
	_ = a.Send(context.Background(), transport.Message{To: "b"})
	if net.Pending() == 0 {
		t.Fatal("crashed (not departed) dest should still get a delivery timer")
	}
	net.Recover("b")
	net.Run()
	if delivered != 1 {
		t.Fatalf("delivered after crash+recover = %d, want 1", delivered)
	}
}

// TestDepartPreservesRNGStream checks the determinism contract of the
// enqueue-time drop: traffic between surviving nodes sees the same loss
// pattern and the same per-message latency draws whether the unrelated
// messages addressed to a dead node are dropped early (Depart) or carried to
// their delivery time (Crash). Absolute virtual times may differ — the dead
// deliveries no longer advance the clock — but the random stream feeding the
// survivors must not shift.
func TestDepartPreservesRNGStream(t *testing.T) {
	run := func(depart bool) []time.Duration {
		net := New(Config{Seed: 9, MinLatency: time.Millisecond, MaxLatency: 20 * time.Millisecond, LossRate: 0.3})
		a := net.Node("a")
		b := net.Node("b")
		net.Node("gone")
		var latencies []time.Duration
		var sentAt time.Duration
		b.SetHandler(func(context.Context, transport.Message) error {
			latencies = append(latencies, net.Now()-sentAt)
			return nil
		})
		if depart {
			net.Depart("gone")
		} else {
			net.Crash("gone")
		}
		for i := 0; i < 50; i++ {
			_ = a.Send(context.Background(), transport.Message{To: "gone"})
			sentAt = net.Now()
			_ = a.Send(context.Background(), transport.Message{To: "b"})
			net.Run()
			latencies = append(latencies, -1) // iteration marker: encodes the loss pattern
		}
		return latencies
	}
	crashLat := run(false)
	departLat := run(true)
	if len(crashLat) != len(departLat) {
		t.Fatalf("survivor delivery pattern differs: crash %d entries, depart %d", len(crashLat), len(departLat))
	}
	for i := range crashLat {
		if crashLat[i] != departLat[i] {
			t.Fatalf("entry %d: %v with depart, %v with crash: RNG stream shifted", i, departLat[i], crashLat[i])
		}
	}
}

// TestCompactRNGDeterministic pins the scale-mode RNG: same seed, same
// stream, and distinct seeds diverge.
func TestCompactRNGDeterministic(t *testing.T) {
	r1 := NewCompactRNG(77)
	r2 := NewCompactRNG(77)
	r3 := NewCompactRNG(78)
	same3 := true
	for i := 0; i < 1000; i++ {
		a, b, c := r1.Uint64(), r2.Uint64(), r3.Uint64()
		if a != b {
			t.Fatalf("draw %d: same seed diverged", i)
		}
		if a != c {
			same3 = false
		}
	}
	if same3 {
		t.Fatal("different seeds produced identical streams")
	}
	// Int63n must stay in range (exercises the Int63 path).
	r := NewCompactRNG(5)
	for i := 0; i < 1000; i++ {
		if v := r.Int63n(10); v < 0 || v >= 10 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestStatsBytes(t *testing.T) {
	net := New(lossless(1))
	a := net.Node("a")
	net.Node("b").SetHandler(func(context.Context, transport.Message) error { return nil })
	_ = a.Send(context.Background(), transport.Message{To: "b", Body: make([]byte, 100)})
	net.Run()
	if st := net.Stats(); st.Bytes != 100 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	net.ResetStats()
	if st := net.Stats(); st.Sent != 0 || st.Bytes != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}
