package soap

import (
	"encoding/json"
	"os"
	"testing"

	"wsgossip/internal/metrics"
)

// Allocation-budget regression guard. BENCH_04 drove the canonical decode
// to single-digit allocs/op; these tests pin that win against silent
// regressions with budgets committed in testdata/alloc_budget.json — CI
// runs them (and the -benchmem smoke) on every push.

type allocBudget struct {
	DecodeMaxAllocs float64 `json:"decode_1kib_max_allocs"`
	EncodeMaxAllocs float64 `json:"encode_1kib_max_allocs"`
}

func loadAllocBudget(t *testing.T, path string) allocBudget {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read alloc budget: %v", err)
	}
	var b allocBudget
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse alloc budget: %v", err)
	}
	if b.DecodeMaxAllocs <= 0 || b.EncodeMaxAllocs <= 0 {
		t.Fatalf("alloc budget missing fields: %+v", b)
	}
	return b
}

func TestDecodeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	budget := loadAllocBudget(t, "testdata/alloc_budget.json")
	env := benchEnvelope(t, 1<<10)
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The canonical wire format must take the scanner path at all — a
	// budget met by accident on the fallback would hide a broken scanner.
	if _, ok := decodeScan(data); !ok {
		t.Fatalf("canonical envelope rejected by the scanner:\n%s", data)
	}
	decodeAllocs := testing.AllocsPerRun(200, func() {
		if _, err := Decode(data); err != nil {
			t.Fatal(err)
		}
	})
	if decodeAllocs > budget.DecodeMaxAllocs {
		t.Errorf("Decode(1KiB) = %.1f allocs/op, budget %.0f (testdata/alloc_budget.json)",
			decodeAllocs, budget.DecodeMaxAllocs)
	}
	encodeAllocs := testing.AllocsPerRun(200, func() {
		if _, err := env.Encode(); err != nil {
			t.Fatal(err)
		}
	})
	if encodeAllocs > budget.EncodeMaxAllocs {
		t.Errorf("Encode(1KiB) = %.1f allocs/op, budget %.0f (testdata/alloc_budget.json)",
			encodeAllocs, budget.EncodeMaxAllocs)
	}
	t.Logf("decode %.1f allocs/op (budget %.0f), encode %.1f allocs/op (budget %.0f)",
		decodeAllocs, budget.DecodeMaxAllocs, encodeAllocs, budget.EncodeMaxAllocs)
}

// TestDecodeAllocBudgetInstrumented re-runs the decode/encode budgets with
// wire metrics installed: instrumentation is all atomic ops, so it must fit
// the SAME budgets, and the per-op delta versus the uninstrumented path
// must stay within one alloc.
func TestDecodeAllocBudgetInstrumented(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	budget := loadAllocBudget(t, "testdata/alloc_budget.json")
	env := benchEnvelope(t, 1<<10)
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bare := testing.AllocsPerRun(200, func() {
		if _, err := Decode(data); err != nil {
			t.Fatal(err)
		}
	})

	InstallWireMetrics(metrics.NewRegistry())
	defer InstallWireMetrics(nil)
	instrumented := testing.AllocsPerRun(200, func() {
		if _, err := Decode(data); err != nil {
			t.Fatal(err)
		}
	})
	if instrumented > budget.DecodeMaxAllocs {
		t.Errorf("instrumented Decode(1KiB) = %.1f allocs/op, budget %.0f", instrumented, budget.DecodeMaxAllocs)
	}
	if instrumented-bare > 1 {
		t.Errorf("instrumentation added %.1f allocs/op to Decode (bare %.1f, instrumented %.1f), budget 1",
			instrumented-bare, bare, instrumented)
	}
	encodeAllocs := testing.AllocsPerRun(200, func() {
		if _, err := env.Encode(); err != nil {
			t.Fatal(err)
		}
	})
	if encodeAllocs > budget.EncodeMaxAllocs {
		t.Errorf("instrumented Encode(1KiB) = %.1f allocs/op, budget %.0f", encodeAllocs, budget.EncodeMaxAllocs)
	}
	t.Logf("decode bare %.1f vs instrumented %.1f allocs/op; encode instrumented %.1f",
		bare, instrumented, encodeAllocs)
}
