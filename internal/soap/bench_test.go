package soap

import (
	"strings"
	"testing"

	"wsgossip/internal/wsa"
)

// Micro-benchmarks of the envelope codec, the innermost hot path of every
// gossip exchange. BENCH_02.json records these before and after the
// encode-once / zero-copy wire path.

type benchPayload struct {
	XMLName struct{} `xml:"urn:bench Payload"`
	Data    string   `xml:"Data"`
}

func benchEnvelope(b testing.TB, size int) *Envelope {
	b.Helper()
	env := NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To:        "mem://target",
		Action:    "urn:bench:op",
		MessageID: "urn:uuid:benchbenchbenchbenchbenchbench",
	}); err != nil {
		b.Fatal(err)
	}
	if err := env.SetBody(benchPayload{Data: strings.Repeat("x", size)}); err != nil {
		b.Fatal(err)
	}
	return env
}

func benchSizes() []struct {
	name string
	size int
} {
	return []struct {
		name string
		size int
	}{{"256B", 256}, {"1KiB", 1 << 10}, {"8KiB", 8 << 10}}
}

// BenchmarkEnvelopeEncode measures full envelope serialization.
func BenchmarkEnvelopeEncode(b *testing.B) {
	for _, sz := range benchSizes() {
		b.Run(sz.name, func(b *testing.B) {
			env := benchEnvelope(b, sz.size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.Encode(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnvelopeDecode measures full envelope parsing, including header
// and body block capture.
func BenchmarkEnvelopeDecode(b *testing.B) {
	for _, sz := range benchSizes() {
		b.Run(sz.name, func(b *testing.B) {
			data, err := benchEnvelope(b, sz.size).Encode()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireRoundTrip measures one decode + re-encode cycle: what every
// disseminator pays per hop on top of transport costs.
func BenchmarkWireRoundTrip(b *testing.B) {
	data, err := benchEnvelope(b, 1<<10).Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := env.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}
