// Package soap implements the SOAP 1.2 subset the WS-Gossip middleware is
// built on: envelope encoding/decoding, faults, a server-side handler chain
// (the interception point where the paper's gossip layer sits), an HTTP
// binding, and an in-memory binding (MemBus) for large in-process
// deployments.
//
// Key types:
//
//   - Envelope / Block — a decoded message: header and body blocks captured
//     verbatim as byte slices.
//   - Handler / Middleware / Dispatcher — the server-side stack. The
//     paper's Disseminator is exactly a Middleware: application code
//     unchanged, gossip layer interposed.
//   - Caller / EncodedSender — the client side; HTTPClient and MemBus
//     implement both.
//   - Fault — SOAP 1.2 faults, with NewFault/AsFault/FaultFrom helpers.
//
// The codec is the gossip hot path and avoids encoding/xml on the canonical
// format: a hand-rolled scanner slices blocks zero-copy out of the input
// buffer, Encode splices them into one exactly-sized allocation, and
// EncodeTemplate/RenderTo serialize a fan-out message once, patching only
// the wsa:To header per target (soap.Fanout is the shared fan-out ladder).
// Non-canonical documents transparently fall back to encoding/xml. See
// DESIGN.md, "The wire path" and "The wire scanner".
//
// # Envelope ownership
//
// Receive and render buffers are pooled: the transport recycles a
// delivery's buffer once its handler returns. The contract (documented on
// Handler) is that a request envelope — including every Block.Raw — is
// valid only during HandleSOAP; a handler that retains it past that point
// must Clone it. Envelope.Snapshot shares the captured bytes and is NOT
// sufficient for retention; it exists for fan-out paths that re-head an
// envelope within a delivery.
package soap
