package soap

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"unicode/utf8"

	"wsgossip/internal/wsa"
)

// Namespace is the SOAP 1.2 envelope namespace.
const Namespace = "http://www.w3.org/2003/05/soap-envelope"

// ContentType is the SOAP 1.2 media type used by the HTTP binding.
const ContentType = "application/soap+xml"

// ErrEmptyBody reports an attempt to decode a body with no child element.
var ErrEmptyBody = errors.New("soap: empty body")

// ErrHeaderNotFound reports a missing header block.
var ErrHeaderNotFound = errors.New("soap: header block not found")

// Envelope is a SOAP 1.2 message.
type Envelope struct {
	XMLName xml.Name `xml:"http://www.w3.org/2003/05/soap-envelope Envelope"`
	Header  *Header  `xml:"Header,omitempty"`
	Body    Body     `xml:"Body"`

	// addr caches the parsed WS-Addressing properties: one parse serves the
	// dispatcher, every middleware, and the handler of a delivery. Header
	// mutations (AddHeader, RemoveHeader, SetAddressing) invalidate it.
	addr atomic.Pointer[wsa.Headers]
}

// Header is the SOAP header: an ordered sequence of extension blocks.
type Header struct {
	XMLName xml.Name `xml:"http://www.w3.org/2003/05/soap-envelope Header"`
	Blocks  []Block  `xml:",any"`
}

// Body is the SOAP body. WS-Gossip messages carry exactly one child element.
type Body struct {
	XMLName xml.Name `xml:"http://www.w3.org/2003/05/soap-envelope Body"`
	Blocks  []Block  `xml:",any"`
}

// Block is one XML element captured verbatim, preserving attributes and
// children, so that header blocks a node does not understand pass through
// untouched (the paper's Consumer role depends on this).
type Block struct {
	XMLName xml.Name
	Raw     []byte
}

var (
	_ xml.Unmarshaler = (*Block)(nil)
	_ xml.Marshaler   = Block{}
)

// UnmarshalXML captures the complete element, including its start tag.
func (b *Block) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	b.XMLName = start.Name
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	if err := enc.EncodeToken(start); err != nil {
		return fmt.Errorf("soap: capture block start: %w", err)
	}
	depth := 1
	for depth > 0 {
		tok, err := d.Token()
		if err != nil {
			return fmt.Errorf("soap: capture block token: %w", err)
		}
		switch tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			depth--
		}
		if err := enc.EncodeToken(tok); err != nil {
			return fmt.Errorf("soap: re-encode block token: %w", err)
		}
	}
	if err := enc.Flush(); err != nil {
		return fmt.Errorf("soap: flush block: %w", err)
	}
	b.Raw = buf.Bytes()
	return nil
}

// MarshalXML replays the captured element verbatim.
func (b Block) MarshalXML(e *xml.Encoder, _ xml.StartElement) error {
	d := xml.NewDecoder(bytes.NewReader(b.Raw))
	for {
		tok, err := d.Token()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("soap: replay block: %w", err)
		}
		if err := e.EncodeToken(tok); err != nil {
			return fmt.Errorf("soap: emit block token: %w", err)
		}
	}
}

// Decode decodes v from the captured element.
func (b Block) Decode(v any) error {
	if err := xml.Unmarshal(b.Raw, v); err != nil {
		return fmt.Errorf("soap: decode block %s: %w", b.XMLName.Local, err)
	}
	return nil
}

// NewEnvelope returns an empty envelope.
func NewEnvelope() *Envelope {
	return &Envelope{}
}

// blockOf marshals v into a captured Block.
func blockOf(v any) (Block, error) {
	raw, err := xml.Marshal(v)
	if err != nil {
		return Block{}, fmt.Errorf("soap: marshal block: %w", err)
	}
	var probe struct {
		XMLName xml.Name
	}
	if err := xml.Unmarshal(raw, &probe); err != nil {
		return Block{}, fmt.Errorf("soap: probe block name: %w", err)
	}
	return Block{XMLName: probe.XMLName, Raw: raw}, nil
}

// AddHeader marshals v and appends it as a header block.
func (e *Envelope) AddHeader(v any) error {
	b, err := blockOf(v)
	if err != nil {
		return err
	}
	if e.Header == nil {
		e.Header = &Header{}
	}
	e.Header.Blocks = append(e.Header.Blocks, b)
	e.addr.Store(nil)
	return nil
}

// HeaderBlock returns the first header block with the given name.
func (e *Envelope) HeaderBlock(space, local string) (Block, bool) {
	if e.Header == nil {
		return Block{}, false
	}
	for _, b := range e.Header.Blocks {
		if b.XMLName.Local == local && (space == "" || b.XMLName.Space == space) {
			return b, true
		}
	}
	return Block{}, false
}

// DecodeHeader decodes the named header block into v.
func (e *Envelope) DecodeHeader(space, local string, v any) error {
	b, ok := e.HeaderBlock(space, local)
	if !ok {
		return fmt.Errorf("%w: {%s}%s", ErrHeaderNotFound, space, local)
	}
	return b.Decode(v)
}

// RemoveHeader deletes all header blocks with the given name and reports
// whether any were removed.
func (e *Envelope) RemoveHeader(space, local string) bool {
	if e.Header == nil {
		return false
	}
	kept := e.Header.Blocks[:0]
	removed := false
	for _, b := range e.Header.Blocks {
		if b.XMLName.Local == local && (space == "" || b.XMLName.Space == space) {
			removed = true
			continue
		}
		kept = append(kept, b)
	}
	e.Header.Blocks = kept
	if removed {
		e.addr.Store(nil)
	}
	return removed
}

// SetBody replaces the body with the marshaled form of v.
func (e *Envelope) SetBody(v any) error {
	b, err := blockOf(v)
	if err != nil {
		return err
	}
	e.Body.Blocks = []Block{b}
	return nil
}

// BodyName returns the qualified name of the first body child, or a zero
// name for an empty body.
func (e *Envelope) BodyName() xml.Name {
	if len(e.Body.Blocks) == 0 {
		return xml.Name{}
	}
	return e.Body.Blocks[0].XMLName
}

// DecodeBody decodes the first body child into v.
func (e *Envelope) DecodeBody(v any) error {
	if len(e.Body.Blocks) == 0 {
		return ErrEmptyBody
	}
	return e.Body.Blocks[0].Decode(v)
}

// Encode serializes the envelope with an XML declaration. The fast path
// splices every captured Block.Raw verbatim into the canonical scaffold in
// one exactly-sized allocation (see wire.go); envelopes that resist
// splicing run through the original encoding/xml serializer.
func (e *Envelope) Encode() ([]byte, error) {
	if out, ok := encodeSplice(e); ok {
		countBytesOut(len(out))
		return out, nil
	}
	out, err := e.encodeLegacy()
	if err == nil {
		countBytesOut(len(out))
	}
	return out, err
}

// Decode parses a serialized envelope through a three-rung ladder. The
// hand-rolled scanner (scan.go) handles the canonical wire format with a
// single byte walk; documents it declines go to the encoding/xml zero-copy
// tokenizer; documents *that* cannot slice self-contained (namespace
// prefixes, blocks inheriting an outer default namespace) are re-parsed
// through the legacy encoding/xml path. On the first two rungs each block
// is a verbatim slice of data, which the envelope keeps alive and must not
// be modified afterwards.
func Decode(data []byte) (*Envelope, error) {
	if len(data) > maxEnvelopeBytes {
		countDecodeError(true)
		return nil, fmt.Errorf("soap: envelope of %d bytes exceeds the %d-byte cap", len(data), maxEnvelopeBytes)
	}
	if env, ok := decodeScan(data); ok {
		countDecode(rungScanner, len(data))
		return env, nil
	}
	if !bytes.Contains(data, wirePrefixDecl) {
		env, err := decodeZeroCopy(data)
		if err == nil {
			countDecode(rungZeroCopy, len(data))
			return env, nil
		}
		if !errors.Is(err, errNotSelfContained) {
			// Genuinely malformed input fails the same way on both paths;
			// keep the cheap error instead of parsing twice.
			countDecodeError(false)
			return nil, err
		}
	}
	env, err := decodeLegacy(data)
	if err == nil {
		countDecode(rungLegacy, len(data))
	} else {
		countDecodeError(false)
	}
	return env, err
}

// wirePrefixDecl gates the zero-copy path: documents declaring namespace
// prefixes can have block slices that depend on out-of-slice context.
var wirePrefixDecl = []byte("xmlns:")

// Clone deep-copies the envelope, including the captured block bytes.
// Fan-out paths use the cheaper Snapshot; Clone is for retention — an
// envelope that must outlive its delivery (and the transport's pooled
// receive buffer backing it) — and for callers that mutate Raw in place.
func (e *Envelope) Clone() *Envelope {
	out := &Envelope{XMLName: e.XMLName}
	if e.Header != nil {
		out.Header = &Header{XMLName: e.Header.XMLName, Blocks: cloneBlocks(e.Header.Blocks)}
	}
	out.Body = Body{XMLName: e.Body.XMLName, Blocks: cloneBlocks(e.Body.Blocks)}
	out.addr.Store(e.addr.Load())
	return out
}

// Snapshot returns a copy-on-write clone: the header and body block lists
// are independent — adding, replacing, or removing blocks on one envelope
// never affects the other — while the captured Raw bytes are shared. Every
// mutation in this package replaces whole blocks and treats Raw as
// immutable, so the fan-out and store paths snapshot instead of
// deep-copying per target.
func (e *Envelope) Snapshot() *Envelope {
	out := &Envelope{XMLName: e.XMLName}
	if e.Header != nil {
		out.Header = &Header{
			XMLName: e.Header.XMLName,
			Blocks:  append([]Block(nil), e.Header.Blocks...),
		}
	}
	out.Body = Body{
		XMLName: e.Body.XMLName,
		Blocks:  append([]Block(nil), e.Body.Blocks...),
	}
	out.addr.Store(e.addr.Load())
	return out
}

func cloneBlocks(in []Block) []Block {
	out := make([]Block, len(in))
	for i, b := range in {
		raw := make([]byte, len(b.Raw))
		copy(raw, b.Raw)
		out[i] = Block{XMLName: b.XMLName, Raw: raw}
	}
	return out
}

// Addressing-header element shapes. WS-Addressing properties are individual
// top-level header blocks.
type (
	toHeader struct {
		XMLName xml.Name `xml:"http://www.w3.org/2005/08/addressing To"`
		Value   string   `xml:",chardata"`
	}
	actionHeader struct {
		XMLName xml.Name `xml:"http://www.w3.org/2005/08/addressing Action"`
		Value   string   `xml:",chardata"`
	}
	messageIDHeader struct {
		XMLName xml.Name `xml:"http://www.w3.org/2005/08/addressing MessageID"`
		Value   string   `xml:",chardata"`
	}
	relatesToHeader struct {
		XMLName xml.Name `xml:"http://www.w3.org/2005/08/addressing RelatesTo"`
		Value   string   `xml:",chardata"`
	}
	replyToHeader struct {
		XMLName xml.Name `xml:"http://www.w3.org/2005/08/addressing ReplyTo"`
		Address string   `xml:"Address"`
	}
	fromHeader struct {
		XMLName xml.Name `xml:"http://www.w3.org/2005/08/addressing From"`
		Address string   `xml:"Address"`
	}
)

// SetAddressing writes the WS-Addressing properties into the header,
// replacing any existing addressing blocks.
func (e *Envelope) SetAddressing(h wsa.Headers) error {
	for _, local := range []string{"To", "Action", "MessageID", "RelatesTo", "ReplyTo", "From"} {
		e.RemoveHeader(wsa.Namespace, local)
	}
	if h.To != "" {
		if err := e.AddHeader(toHeader{Value: h.To}); err != nil {
			return err
		}
	}
	if h.Action != "" {
		if err := e.AddHeader(actionHeader{Value: h.Action}); err != nil {
			return err
		}
	}
	if h.MessageID != "" {
		if err := e.AddHeader(messageIDHeader{Value: string(h.MessageID)}); err != nil {
			return err
		}
	}
	if h.RelatesTo != "" {
		if err := e.AddHeader(relatesToHeader{Value: string(h.RelatesTo)}); err != nil {
			return err
		}
	}
	if h.ReplyTo != nil {
		if err := e.AddHeader(replyToHeader{Address: h.ReplyTo.Address}); err != nil {
			return err
		}
	}
	if h.From != nil {
		if err := e.AddHeader(fromHeader{Address: h.From.Address}); err != nil {
			return err
		}
	}
	return nil
}

// Addressing extracts the WS-Addressing properties from the header. Missing
// blocks yield zero fields; callers validate what they require. The result
// is cached on the envelope (invalidated by header mutations), so the
// per-delivery dispatch chain pays for at most one parse.
func (e *Envelope) Addressing() wsa.Headers {
	if h := e.addr.Load(); h != nil {
		return *h
	}
	h := e.computeAddressing()
	e.addr.Store(&h)
	return h
}

// computeAddressing walks the header blocks once. The simple text
// properties (To, Action, MessageID, RelatesTo) are extracted directly from
// the captured block bytes; only blocks with element children (ReplyTo,
// From) or unusual content run through encoding/xml.
func (e *Envelope) computeAddressing() wsa.Headers {
	var h wsa.Headers
	if e.Header == nil {
		return h
	}
	const (
		fTo = 1 << iota
		fAction
		fMessageID
		fRelatesTo
		fReplyTo
		fFrom
	)
	var seen uint8
	for _, b := range e.Header.Blocks {
		if b.XMLName.Space != wsa.Namespace {
			continue
		}
		// First block of each name wins, like the HeaderBlock lookup the
		// per-property decode used to run.
		switch b.XMLName.Local {
		case "To":
			if seen&fTo != 0 {
				continue
			}
			seen |= fTo
			if v, ok := headerText(b.Raw); ok {
				h.To = v
			} else {
				var t toHeader
				if b.Decode(&t) == nil {
					h.To = t.Value
				}
			}
		case "Action":
			if seen&fAction != 0 {
				continue
			}
			seen |= fAction
			if v, ok := headerText(b.Raw); ok {
				h.Action = v
			} else {
				var a actionHeader
				if b.Decode(&a) == nil {
					h.Action = a.Value
				}
			}
		case "MessageID":
			if seen&fMessageID != 0 {
				continue
			}
			seen |= fMessageID
			if v, ok := headerText(b.Raw); ok {
				h.MessageID = wsa.MessageID(v)
			} else {
				var m messageIDHeader
				if b.Decode(&m) == nil {
					h.MessageID = wsa.MessageID(m.Value)
				}
			}
		case "RelatesTo":
			if seen&fRelatesTo != 0 {
				continue
			}
			seen |= fRelatesTo
			if v, ok := headerText(b.Raw); ok {
				h.RelatesTo = wsa.MessageID(v)
			} else {
				var r relatesToHeader
				if b.Decode(&r) == nil {
					h.RelatesTo = wsa.MessageID(r.Value)
				}
			}
		case "ReplyTo":
			if seen&fReplyTo != 0 {
				continue
			}
			seen |= fReplyTo
			var r replyToHeader
			if b.Decode(&r) == nil {
				epr := wsa.NewEPR(r.Address)
				h.ReplyTo = &epr
			}
		case "From":
			if seen&fFrom != 0 {
				continue
			}
			seen |= fFrom
			var f fromHeader
			if b.Decode(&f) == nil {
				epr := wsa.NewEPR(f.Address)
				h.From = &epr
			}
		}
	}
	return h
}

// headerText extracts the character content of a simple captured element —
// no child elements, comments, or CDATA — unescaping entity references and
// normalizing line endings exactly as encoding/xml chardata capture would.
// ok=false sends the block to the encoding/xml slow path.
func headerText(raw []byte) (string, bool) {
	// Skip the start tag, honouring quoted attribute values (which may
	// contain '>' and '/>').
	i := 1
	for i < len(raw) && raw[i] != '>' {
		if c := raw[i]; c == '"' || c == '\'' {
			i++
			for i < len(raw) && raw[i] != c {
				i++
			}
			if i >= len(raw) {
				return "", false
			}
		}
		i++
	}
	if i >= len(raw) {
		return "", false
	}
	if raw[i-1] == '/' {
		return "", true // self-closing: empty content
	}
	i++
	start := i
	for i < len(raw) && raw[i] != '<' {
		i++
	}
	if i+1 >= len(raw) || raw[i+1] != '/' {
		return "", false // child element, comment, or CDATA: slow path
	}
	return unescapeText(raw[start:i])
}

// unescapeText expands entity references and normalizes \r\n / \r to \n,
// mirroring encoding/xml's chardata handling. Unknown entities fall back.
func unescapeText(text []byte) (string, bool) {
	if bytes.IndexByte(text, '&') < 0 && bytes.IndexByte(text, '\r') < 0 {
		return string(text), true
	}
	out := make([]byte, 0, len(text))
	for i := 0; i < len(text); {
		switch c := text[i]; c {
		case '&':
			n, r := entityLen(text[i:])
			if n < 0 {
				return "", false
			}
			out = utf8.AppendRune(out, r)
			i += n
		case '\r':
			out = append(out, '\n')
			i++
			if i < len(text) && text[i] == '\n' {
				i++
			}
		default:
			out = append(out, c)
			i++
		}
	}
	return string(out), true
}
