package soap

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"

	"wsgossip/internal/wsa"
)

type testBody struct {
	XMLName xml.Name `xml:"urn:test Ping"`
	Value   string   `xml:"Value"`
	N       int      `xml:"N"`
}

type testHeader struct {
	XMLName xml.Name `xml:"urn:test Meta"`
	Tag     string   `xml:"Tag"`
}

func TestEnvelopeBodyRoundTrip(t *testing.T) {
	env := NewEnvelope()
	if err := env.SetBody(testBody{Value: "hello", N: 7}); err != nil {
		t.Fatalf("set body: %v", err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Contains(data, []byte(Namespace)) {
		t.Fatalf("missing soap namespace in %s", data)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var out testBody
	if err := decoded.DecodeBody(&out); err != nil {
		t.Fatalf("decode body: %v", err)
	}
	if out.Value != "hello" || out.N != 7 {
		t.Fatalf("round trip body = %+v", out)
	}
}

func TestEnvelopeBodyName(t *testing.T) {
	env := NewEnvelope()
	if name := env.BodyName(); name.Local != "" {
		t.Fatalf("empty envelope body name = %v", name)
	}
	if err := env.SetBody(testBody{Value: "x"}); err != nil {
		t.Fatal(err)
	}
	name := env.BodyName()
	if name.Space != "urn:test" || name.Local != "Ping" {
		t.Fatalf("body name = %v", name)
	}
}

func TestDecodeEmptyBody(t *testing.T) {
	env := NewEnvelope()
	var out testBody
	if err := env.DecodeBody(&out); err != ErrEmptyBody {
		t.Fatalf("err = %v, want ErrEmptyBody", err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	env := NewEnvelope()
	if err := env.AddHeader(testHeader{Tag: "abc"}); err != nil {
		t.Fatalf("add header: %v", err)
	}
	if err := env.SetBody(testBody{Value: "v"}); err != nil {
		t.Fatal(err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var h testHeader
	if err := decoded.DecodeHeader("urn:test", "Meta", &h); err != nil {
		t.Fatalf("decode header: %v", err)
	}
	if h.Tag != "abc" {
		t.Fatalf("header tag = %q", h.Tag)
	}
}

func TestHeaderNotFound(t *testing.T) {
	env := NewEnvelope()
	var h testHeader
	err := env.DecodeHeader("urn:test", "Meta", &h)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoveHeader(t *testing.T) {
	env := NewEnvelope()
	if env.RemoveHeader("urn:test", "Meta") {
		t.Fatal("removed from empty envelope")
	}
	if err := env.AddHeader(testHeader{Tag: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := env.AddHeader(testHeader{Tag: "b"}); err != nil {
		t.Fatal(err)
	}
	if !env.RemoveHeader("urn:test", "Meta") {
		t.Fatal("remove reported nothing removed")
	}
	if _, ok := env.HeaderBlock("urn:test", "Meta"); ok {
		t.Fatal("header survived removal")
	}
}

// TestUnknownHeaderPassThrough is the property the paper's Consumer role
// depends on: header blocks a node does not understand survive a full
// decode/encode cycle byte-compatibly enough to re-decode.
func TestUnknownHeaderPassThrough(t *testing.T) {
	env := NewEnvelope()
	if err := env.AddHeader(testHeader{Tag: "keep-me"}); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(testBody{Value: "v"}); err != nil {
		t.Fatal(err)
	}
	// Two full wire cycles.
	for i := 0; i < 2; i++ {
		data, err := env.Encode()
		if err != nil {
			t.Fatalf("cycle %d encode: %v", i, err)
		}
		env, err = Decode(data)
		if err != nil {
			t.Fatalf("cycle %d decode: %v", i, err)
		}
	}
	var h testHeader
	if err := env.DecodeHeader("urn:test", "Meta", &h); err != nil {
		t.Fatalf("header lost after cycles: %v", err)
	}
	if h.Tag != "keep-me" {
		t.Fatalf("header tag = %q", h.Tag)
	}
}

func TestEnvelopeClone(t *testing.T) {
	env := NewEnvelope()
	if err := env.AddHeader(testHeader{Tag: "orig"}); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(testBody{Value: "v"}); err != nil {
		t.Fatal(err)
	}
	cp := env.Clone()
	// Mutating the clone must not affect the original.
	cp.RemoveHeader("urn:test", "Meta")
	if _, ok := env.HeaderBlock("urn:test", "Meta"); !ok {
		t.Fatal("clone mutation leaked into original")
	}
	// Raw bytes must be independent.
	cp2 := env.Clone()
	cp2.Header.Blocks[0].Raw[0] = 'X'
	var h testHeader
	if err := env.DecodeHeader("urn:test", "Meta", &h); err != nil {
		t.Fatalf("original corrupted by clone byte mutation: %v", err)
	}
}

func TestAddressingRoundTrip(t *testing.T) {
	env := NewEnvelope()
	reply := wsa.NewEPR("mem://caller")
	in := wsa.Headers{
		To:        "mem://svc",
		Action:    "urn:op",
		MessageID: "urn:uuid:1234",
		RelatesTo: "urn:uuid:0000",
		ReplyTo:   &reply,
	}
	if err := env.SetAddressing(in); err != nil {
		t.Fatalf("set addressing: %v", err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	out := decoded.Addressing()
	if out.To != in.To || out.Action != in.Action || out.MessageID != in.MessageID || out.RelatesTo != in.RelatesTo {
		t.Fatalf("addressing round trip = %+v, want %+v", out, in)
	}
	if out.ReplyTo == nil || out.ReplyTo.Address != "mem://caller" {
		t.Fatalf("reply-to = %+v", out.ReplyTo)
	}
}

func TestSetAddressingReplaces(t *testing.T) {
	env := NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{To: "mem://a", Action: "urn:1"}); err != nil {
		t.Fatal(err)
	}
	if err := env.SetAddressing(wsa.Headers{To: "mem://b", Action: "urn:2"}); err != nil {
		t.Fatal(err)
	}
	got := env.Addressing()
	if got.To != "mem://b" || got.Action != "urn:2" {
		t.Fatalf("addressing = %+v", got)
	}
	// Exactly one To block should remain.
	count := 0
	for _, b := range env.Header.Blocks {
		if b.XMLName.Local == "To" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("To blocks = %d, want 1", count)
	}
}

func TestBodyRoundTripProperty(t *testing.T) {
	f := func(value string, n int) bool {
		for _, r := range value {
			if r < 0x20 || r == 0xFFFE || r == 0xFFFF || !isValidXMLRune(r) {
				return true
			}
		}
		env := NewEnvelope()
		if err := env.SetBody(testBody{Value: value, N: n}); err != nil {
			return false
		}
		data, err := env.Encode()
		if err != nil {
			return false
		}
		decoded, err := Decode(data)
		if err != nil {
			return false
		}
		var out testBody
		if err := decoded.DecodeBody(&out); err != nil {
			return false
		}
		return out.Value == value && out.N == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func isValidXMLRune(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		(r >= 0x20 && r <= 0xD7FF) ||
		(r >= 0xE000 && r <= 0xFFFD) ||
		(r >= 0x10000 && r <= 0x10FFFF)
}
