package soap

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"wsgossip/internal/wsa"
)

// Fanout partial-failure and cancellation semantics: the failed list must
// be exact (every target errored or skipped, none double-counted), and a
// ctx cancelled mid-fanout must stop issuing new sends while still
// accounting for the targets never attempted.

// stubSender is a Caller that records every attempted target and fails the
// configured ones. Safe for concurrent Fanouts.
type stubSender struct {
	mu       sync.Mutex
	attempts []string
	fail     map[string]bool
	onSend   func(to string) // runs inside the send, before the verdict
}

func (s *stubSender) send(to string) error {
	if s.onSend != nil {
		s.onSend(to)
	}
	s.mu.Lock()
	s.attempts = append(s.attempts, to)
	failed := s.fail[to]
	s.mu.Unlock()
	if failed {
		return fmt.Errorf("stub: %s unreachable", to)
	}
	return nil
}

func (s *stubSender) attemptCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.attempts)
}

func (s *stubSender) Call(context.Context, string, *Envelope) (*Envelope, error) {
	return nil, errors.New("stub: call unsupported")
}

func (s *stubSender) Send(_ context.Context, to string, _ *Envelope) error {
	return s.send(to)
}

// encodedStubSender adds the EncodedSender fast path so Fanout takes the
// encode-once template branch.
type encodedStubSender struct{ stubSender }

func (s *encodedStubSender) SendEncoded(_ context.Context, to string, data []byte) error {
	if err := s.send(to); err != nil {
		return err // buffer stays with the caller, per the contract
	}
	putBytes(data)
	return nil
}

var (
	_ Caller        = (*stubSender)(nil)
	_ EncodedSender = (*encodedStubSender)(nil)
)

func fanoutEnv(t *testing.T) *Envelope {
	t.Helper()
	env := NewEnvelope()
	// No To: Fanout splices the per-target address itself.
	if err := env.SetAddressing(wsa.Headers{Action: "urn:test", MessageID: wsa.NewMessageID()}); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(testBody{Value: "payload"}); err != nil {
		t.Fatal(err)
	}
	return env
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFanoutPartialFailureExact(t *testing.T) {
	targets := []string{"urn:p1", "urn:p2", "urn:p3", "urn:p4", "urn:p5", "urn:p6"}
	for name, caller := range map[string]Caller{
		"encoded": &encodedStubSender{stubSender{fail: map[string]bool{"urn:p2": true, "urn:p5": true}}},
		"plain":   &stubSender{fail: map[string]bool{"urn:p2": true, "urn:p5": true}},
	} {
		t.Run(name, func(t *testing.T) {
			sent, failed := Fanout(context.Background(), caller, fanoutEnv(t), targets)
			if sent != 4 {
				t.Fatalf("sent = %d, want 4", sent)
			}
			if !sameStrings(failed, []string{"urn:p2", "urn:p5"}) {
				t.Fatalf("failed = %v, want [urn:p2 urn:p5]", failed)
			}
		})
	}
}

func TestFanoutAllFail(t *testing.T) {
	targets := []string{"urn:a", "urn:b"}
	s := &stubSender{fail: map[string]bool{"urn:a": true, "urn:b": true}}
	sent, failed := Fanout(context.Background(), s, fanoutEnv(t), targets)
	if sent != 0 || !sameStrings(failed, targets) {
		t.Fatalf("sent = %d, failed = %v", sent, failed)
	}
}

func TestFanoutCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	targets := []string{"urn:a", "urn:b", "urn:c"}
	for name, caller := range map[string]Caller{
		"encoded": &encodedStubSender{},
		"plain":   &stubSender{},
	} {
		t.Run(name, func(t *testing.T) {
			sent, failed := Fanout(ctx, caller, fanoutEnv(t), targets)
			if sent != 0 || !sameStrings(failed, targets) {
				t.Fatalf("sent = %d, failed = %v, want all targets failed", sent, failed)
			}
			if n := caller.(interface{ attemptCount() int }).attemptCount(); n != 0 {
				t.Fatalf("issued %d sends after cancellation", n)
			}
		})
	}
}

func TestFanoutCancelMidway(t *testing.T) {
	targets := []string{"urn:p1", "urn:p2", "urn:p3", "urn:p4", "urn:p5"}
	run := func(t *testing.T, mk func(onSend func(string)) Caller) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		caller := mk(func(to string) {
			if to == "urn:p3" {
				cancel() // cancelled during the third send
			}
		})
		sent, failed := Fanout(ctx, caller, fanoutEnv(t), targets)
		if sent != 3 {
			t.Fatalf("sent = %d, want 3 (p3's send completes, p4/p5 never start)", sent)
		}
		if !sameStrings(failed, []string{"urn:p4", "urn:p5"}) {
			t.Fatalf("failed = %v, want the never-attempted tail", failed)
		}
		if got := caller.(interface{ attemptCount() int }).attemptCount(); got != 3 {
			t.Fatalf("attempts = %d, want 3", got)
		}
		if sent+len(failed) != len(targets) {
			t.Fatalf("accounting leak: sent %d + failed %d != %d targets", sent, len(failed), len(targets))
		}
	}
	t.Run("encoded", func(t *testing.T) {
		run(t, func(onSend func(string)) Caller {
			return &encodedStubSender{stubSender{onSend: onSend}}
		})
	})
	t.Run("plain", func(t *testing.T) {
		run(t, func(onSend func(string)) Caller {
			return &stubSender{onSend: onSend}
		})
	})
}

// TestFanoutConcurrentExactness runs many concurrent Fanouts over one
// shared caller with scattered per-target errors: each invocation's failed
// list must be exact regardless of interleaving (-race pins the data-race
// half of the claim).
func TestFanoutConcurrentExactness(t *testing.T) {
	caller := &encodedStubSender{stubSender{fail: map[string]bool{"urn:p1": true, "urn:p4": true}}}
	targets := []string{"urn:p0", "urn:p1", "urn:p2", "urn:p3", "urn:p4"}
	env := fanoutEnv(t)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sent, failed := Fanout(context.Background(), caller, env.Snapshot(), targets)
			if sent != 3 || !sameStrings(failed, []string{"urn:p1", "urn:p4"}) {
				errs <- fmt.Sprintf("sent = %d, failed = %v", sent, failed)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := caller.attemptCount(); got != 16*len(targets) {
		t.Fatalf("attempts = %d, want %d", got, 16*len(targets))
	}
}
