package soap

import (
	"encoding/xml"
	"errors"
	"fmt"
)

// SOAP 1.2 fault code values.
const (
	CodeSender   = "Sender"
	CodeReceiver = "Receiver"
)

// Fault is a SOAP 1.2 fault body element.
type Fault struct {
	XMLName xml.Name    `xml:"http://www.w3.org/2003/05/soap-envelope Fault"`
	Code    FaultCode   `xml:"Code"`
	Reason  FaultReason `xml:"Reason"`
	Detail  string      `xml:"Detail,omitempty"`
}

// FaultCode carries the machine-readable fault classification.
type FaultCode struct {
	Value string `xml:"Value"`
}

// FaultReason carries the human-readable fault explanation.
type FaultReason struct {
	Text string `xml:"Text"`
}

var _ error = (*Fault)(nil)

// Error implements error so faults can flow through error returns.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault [%s]: %s", f.Code.Value, f.Reason.Text)
}

// NewFault constructs a fault with the given code value and reason.
func NewFault(code, reason string) *Fault {
	return &Fault{Code: FaultCode{Value: code}, Reason: FaultReason{Text: reason}}
}

// FaultEnvelope wraps a fault into a complete envelope.
func FaultEnvelope(f *Fault) (*Envelope, error) {
	env := NewEnvelope()
	if err := env.SetBody(f); err != nil {
		return nil, err
	}
	return env, nil
}

// FaultFrom extracts a fault from the envelope body, or returns nil if the
// body is not a fault.
func FaultFrom(env *Envelope) *Fault {
	if env == nil {
		return nil
	}
	name := env.BodyName()
	if name.Space != Namespace || name.Local != "Fault" {
		return nil
	}
	var f Fault
	if err := env.DecodeBody(&f); err != nil {
		return nil
	}
	return &f
}

// AsFault converts err into a fault: an existing *Fault passes through,
// anything else becomes a Receiver fault.
func AsFault(err error) *Fault {
	var f *Fault
	if errors.As(err, &f) {
		return f
	}
	return NewFault(CodeReceiver, err.Error())
}
