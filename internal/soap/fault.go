package soap

import (
	"encoding/xml"
	"errors"
	"fmt"
	"time"
)

// SOAP 1.2 fault code values.
const (
	CodeSender   = "Sender"
	CodeReceiver = "Receiver"
)

// Fault is a SOAP 1.2 fault body element.
type Fault struct {
	XMLName xml.Name    `xml:"http://www.w3.org/2003/05/soap-envelope Fault"`
	Code    FaultCode   `xml:"Code"`
	Reason  FaultReason `xml:"Reason"`
	Detail  string      `xml:"Detail,omitempty"`
	// RetryAfterMillis, when > 0, is an overload back-off hint: the sender
	// should not retry — and should defer further traffic to — this endpoint
	// for the given number of milliseconds. It is this middleware's fault
	// extension for explicit load shedding (the HTTP binding mirrors it as a
	// 503 with a Retry-After header); senders honor it through the delivery
	// plane's per-peer deferral.
	RetryAfterMillis int64 `xml:"RetryAfterMillis,omitempty"`
}

// FaultCode carries the machine-readable fault classification.
type FaultCode struct {
	Value string `xml:"Value"`
}

// FaultReason carries the human-readable fault explanation.
type FaultReason struct {
	Text string `xml:"Text"`
}

var _ error = (*Fault)(nil)

// Error implements error so faults can flow through error returns.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault [%s]: %s", f.Code.Value, f.Reason.Text)
}

// NewFault constructs a fault with the given code value and reason.
func NewFault(code, reason string) *Fault {
	return &Fault{Code: FaultCode{Value: code}, Reason: FaultReason{Text: reason}}
}

// NewOverloadedFault constructs the Receiver fault an admission gate sheds
// load with: the reason explains the refusal and retryAfter tells the sender
// how long to defer this endpoint (rounded up to a whole millisecond so a
// positive hint never serializes as zero).
func NewOverloadedFault(reason string, retryAfter time.Duration) *Fault {
	f := NewFault(CodeReceiver, reason)
	if retryAfter > 0 {
		millis := int64((retryAfter + time.Millisecond - 1) / time.Millisecond)
		f.RetryAfterMillis = millis
	}
	return f
}

// RetryAfter returns the overload back-off hint carried by the fault, and
// whether one is present.
func (f *Fault) RetryAfter() (time.Duration, bool) {
	if f.RetryAfterMillis <= 0 {
		return 0, false
	}
	return time.Duration(f.RetryAfterMillis) * time.Millisecond, true
}

// RetryAfterHint extracts an overload back-off hint from any error: a
// *Fault carrying one yields (hint, true), everything else (0, false).
// Delivery policies use it to tell "the receiver asked me to back off"
// apart from ordinary failures.
func RetryAfterHint(err error) (time.Duration, bool) {
	var f *Fault
	if !errors.As(err, &f) {
		return 0, false
	}
	return f.RetryAfter()
}

// IsSenderFault reports whether err is a SOAP fault blaming the sender —
// a permanent, non-retryable failure (the same bytes will fault again).
func IsSenderFault(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Code.Value == CodeSender
}

// FaultEnvelope wraps a fault into a complete envelope.
func FaultEnvelope(f *Fault) (*Envelope, error) {
	env := NewEnvelope()
	if err := env.SetBody(f); err != nil {
		return nil, err
	}
	return env, nil
}

// FaultFrom extracts a fault from the envelope body, or returns nil if the
// body is not a fault.
func FaultFrom(env *Envelope) *Fault {
	if env == nil {
		return nil
	}
	name := env.BodyName()
	if name.Space != Namespace || name.Local != "Fault" {
		return nil
	}
	var f Fault
	if err := env.DecodeBody(&f); err != nil {
		return nil
	}
	return &f
}

// AsFault converts err into a fault: an existing *Fault passes through,
// anything else becomes a Receiver fault.
func AsFault(err error) *Fault {
	var f *Fault
	if errors.As(err, &f) {
		return f
	}
	return NewFault(CodeReceiver, err.Error())
}
