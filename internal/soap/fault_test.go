package soap

import (
	"errors"
	"strings"
	"testing"
)

func TestFaultError(t *testing.T) {
	f := NewFault(CodeSender, "bad input")
	if !strings.Contains(f.Error(), "Sender") || !strings.Contains(f.Error(), "bad input") {
		t.Fatalf("fault error = %q", f.Error())
	}
}

func TestFaultEnvelopeRoundTrip(t *testing.T) {
	env, err := FaultEnvelope(NewFault(CodeReceiver, "boom"))
	if err != nil {
		t.Fatalf("fault envelope: %v", err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	f := FaultFrom(decoded)
	if f == nil {
		t.Fatal("fault not detected after round trip")
	}
	if f.Code.Value != CodeReceiver || f.Reason.Text != "boom" {
		t.Fatalf("fault = %+v", f)
	}
}

func TestFaultFromNonFault(t *testing.T) {
	env := NewEnvelope()
	if err := env.SetBody(testBody{Value: "ok"}); err != nil {
		t.Fatal(err)
	}
	if f := FaultFrom(env); f != nil {
		t.Fatalf("non-fault detected as fault: %+v", f)
	}
	if f := FaultFrom(nil); f != nil {
		t.Fatal("nil envelope produced a fault")
	}
}

func TestAsFault(t *testing.T) {
	orig := NewFault(CodeSender, "x")
	if got := AsFault(orig); got != orig {
		t.Fatal("existing fault not passed through")
	}
	wrapped := errors.Join(errors.New("outer"), orig)
	if got := AsFault(wrapped); got != orig {
		t.Fatal("wrapped fault not unwrapped")
	}
	plain := AsFault(errors.New("plain"))
	if plain.Code.Value != CodeReceiver {
		t.Fatalf("plain error fault code = %q", plain.Code.Value)
	}
}
