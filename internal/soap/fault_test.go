package soap

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestFaultError(t *testing.T) {
	f := NewFault(CodeSender, "bad input")
	if !strings.Contains(f.Error(), "Sender") || !strings.Contains(f.Error(), "bad input") {
		t.Fatalf("fault error = %q", f.Error())
	}
}

func TestFaultEnvelopeRoundTrip(t *testing.T) {
	env, err := FaultEnvelope(NewFault(CodeReceiver, "boom"))
	if err != nil {
		t.Fatalf("fault envelope: %v", err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	f := FaultFrom(decoded)
	if f == nil {
		t.Fatal("fault not detected after round trip")
	}
	if f.Code.Value != CodeReceiver || f.Reason.Text != "boom" {
		t.Fatalf("fault = %+v", f)
	}
}

func TestFaultFromNonFault(t *testing.T) {
	env := NewEnvelope()
	if err := env.SetBody(testBody{Value: "ok"}); err != nil {
		t.Fatal(err)
	}
	if f := FaultFrom(env); f != nil {
		t.Fatalf("non-fault detected as fault: %+v", f)
	}
	if f := FaultFrom(nil); f != nil {
		t.Fatal("nil envelope produced a fault")
	}
}

func TestOverloadedFaultRoundTrip(t *testing.T) {
	f := NewOverloadedFault("admission queue full", 1500*time.Millisecond)
	if f.Code.Value != CodeReceiver {
		t.Fatalf("code = %q, want Receiver", f.Code.Value)
	}
	env, err := FaultEnvelope(f)
	if err != nil {
		t.Fatal(err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := FaultFrom(decoded)
	if got == nil {
		t.Fatal("fault lost on the wire")
	}
	after, ok := got.RetryAfter()
	if !ok || after != 1500*time.Millisecond {
		t.Fatalf("hint after round trip = (%v, %v), want (1.5s, true)", after, ok)
	}
}

func TestOverloadedFaultRoundsUp(t *testing.T) {
	// A sub-millisecond hint must never serialize as "no hint".
	if f := NewOverloadedFault("x", 1); f.RetryAfterMillis != 1 {
		t.Fatalf("RetryAfterMillis = %d, want 1", f.RetryAfterMillis)
	}
	if f := NewOverloadedFault("x", 0); f.RetryAfterMillis != 0 {
		t.Fatalf("zero hint serialized as %d", f.RetryAfterMillis)
	}
}

func TestRetryAfterHint(t *testing.T) {
	shed := NewOverloadedFault("busy", time.Second)
	if d, ok := RetryAfterHint(fmt.Errorf("send peer-1: %w", shed)); !ok || d != time.Second {
		t.Fatalf("wrapped hint = (%v, %v), want (1s, true)", d, ok)
	}
	if _, ok := RetryAfterHint(errors.New("plain")); ok {
		t.Fatal("plain error produced a hint")
	}
	if _, ok := RetryAfterHint(NewFault(CodeReceiver, "down")); ok {
		t.Fatal("hintless fault produced a hint")
	}
	if _, ok := RetryAfterHint(nil); ok {
		t.Fatal("nil error produced a hint")
	}
}

func TestIsSenderFault(t *testing.T) {
	if !IsSenderFault(NewFault(CodeSender, "bad bytes")) {
		t.Fatal("sender fault not recognized")
	}
	if !IsSenderFault(fmt.Errorf("send: %w", NewFault(CodeSender, "bad"))) {
		t.Fatal("wrapped sender fault not recognized")
	}
	if IsSenderFault(NewFault(CodeReceiver, "down")) {
		t.Fatal("receiver fault classified as sender")
	}
	if IsSenderFault(errors.New("plain")) || IsSenderFault(nil) {
		t.Fatal("non-fault classified as sender fault")
	}
}

func TestAsFault(t *testing.T) {
	orig := NewFault(CodeSender, "x")
	if got := AsFault(orig); got != orig {
		t.Fatal("existing fault not passed through")
	}
	wrapped := errors.Join(errors.New("outer"), orig)
	if got := AsFault(wrapped); got != orig {
		t.Fatal("wrapped fault not unwrapped")
	}
	plain := AsFault(errors.New("plain"))
	if plain.Code.Value != CodeReceiver {
		t.Fatalf("plain error fault code = %q", plain.Code.Value)
	}
}
