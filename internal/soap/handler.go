package soap

import (
	"context"
	"fmt"
	"sync"

	"wsgossip/internal/wsa"
)

// Request is an inbound SOAP message.
type Request struct {
	// Envelope is the full inbound envelope (headers and body).
	Envelope *Envelope
	// Remote is the transport-level sender address, when known.
	Remote string
}

// Addressing returns the WS-Addressing header properties, parsed lazily on
// first use: a delivery whose handler never consults them (or whose
// envelope already cached them) pays nothing. The parse is cached on the
// envelope, so the dispatcher, every middleware, and the handler share one.
func (r *Request) Addressing() wsa.Headers {
	if r.Envelope == nil {
		return wsa.Headers{}
	}
	return r.Envelope.Addressing()
}

// Handler processes one SOAP request. A nil response envelope means the
// exchange is one-way (the HTTP binding answers 202 Accepted).
//
// Ownership: the request envelope — including every Block.Raw, which may
// alias a pooled transport buffer — is valid only until HandleSOAP returns.
// A handler that retains the envelope past that point must Clone it
// (Snapshot is not enough: it shares the captured bytes).
type Handler interface {
	HandleSOAP(ctx context.Context, req *Request) (*Envelope, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, req *Request) (*Envelope, error)

var _ Handler = HandlerFunc(nil)

// HandleSOAP calls f.
func (f HandlerFunc) HandleSOAP(ctx context.Context, req *Request) (*Envelope, error) {
	return f(ctx, req)
}

// Middleware wraps a handler with additional behaviour. The paper's gossip
// layer is exactly such a middleware: it intercepts messages on their way to
// the application service and re-routes copies to selected peers.
type Middleware func(Handler) Handler

// Chain wraps h with the middlewares so the first listed runs outermost.
func Chain(h Handler, mws ...Middleware) Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// Dispatcher routes requests to handlers by WS-Addressing action URI. It is
// the per-node service registry used by both bindings.
type Dispatcher struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	fallback Handler
}

var _ Handler = (*Dispatcher)(nil)

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{handlers: make(map[string]Handler)}
}

// Register binds an action URI to a handler, replacing any previous binding.
func (d *Dispatcher) Register(action string, h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handlers[action] = h
}

// SetFallback installs the handler used for unknown actions.
func (d *Dispatcher) SetFallback(h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fallback = h
}

// Actions lists the registered action URIs.
func (d *Dispatcher) Actions() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.handlers))
	for a := range d.handlers {
		out = append(out, a)
	}
	return out
}

// HandleSOAP dispatches by the request's WS-Addressing action.
func (d *Dispatcher) HandleSOAP(ctx context.Context, req *Request) (*Envelope, error) {
	action := req.Addressing().Action
	d.mu.RLock()
	h, ok := d.handlers[action]
	fb := d.fallback
	d.mu.RUnlock()
	if !ok {
		if fb != nil {
			return fb.HandleSOAP(ctx, req)
		}
		return nil, NewFault(CodeSender, fmt.Sprintf("no handler for action %q", action))
	}
	return h.HandleSOAP(ctx, req)
}
