package soap

import (
	"context"
	"errors"
	"testing"

	"wsgossip/internal/wsa"
)

func reqWithAction(t *testing.T, action string) *Request {
	t.Helper()
	env := NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{To: "mem://svc", Action: action}); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(testBody{Value: "x"}); err != nil {
		t.Fatal(err)
	}
	return &Request{Envelope: env}
}

func TestDispatcherRoutes(t *testing.T) {
	d := NewDispatcher()
	var hit string
	d.Register("urn:a", HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		hit = "a"
		return nil, nil
	}))
	d.Register("urn:b", HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		hit = "b"
		return nil, nil
	}))
	if _, err := d.HandleSOAP(context.Background(), reqWithAction(t, "urn:b")); err != nil {
		t.Fatal(err)
	}
	if hit != "b" {
		t.Fatalf("hit = %q", hit)
	}
}

func TestDispatcherUnknownAction(t *testing.T) {
	d := NewDispatcher()
	_, err := d.HandleSOAP(context.Background(), reqWithAction(t, "urn:none"))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if f.Code.Value != CodeSender {
		t.Fatalf("fault code = %q", f.Code.Value)
	}
}

func TestDispatcherFallback(t *testing.T) {
	d := NewDispatcher()
	called := false
	d.SetFallback(HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		called = true
		return nil, nil
	}))
	if _, err := d.HandleSOAP(context.Background(), reqWithAction(t, "urn:none")); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("fallback not invoked")
	}
}

func TestDispatcherActions(t *testing.T) {
	d := NewDispatcher()
	d.Register("urn:a", HandlerFunc(func(context.Context, *Request) (*Envelope, error) { return nil, nil }))
	d.Register("urn:b", HandlerFunc(func(context.Context, *Request) (*Envelope, error) { return nil, nil }))
	if got := len(d.Actions()); got != 2 {
		t.Fatalf("actions = %d", got)
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next Handler) Handler {
			return HandlerFunc(func(ctx context.Context, req *Request) (*Envelope, error) {
				order = append(order, name+"-in")
				resp, err := next.HandleSOAP(ctx, req)
				order = append(order, name+"-out")
				return resp, err
			})
		}
	}
	inner := HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		order = append(order, "app")
		return nil, nil
	})
	h := Chain(inner, mk("outer"), mk("inner"))
	if _, err := h.HandleSOAP(context.Background(), reqWithAction(t, "urn:x")); err != nil {
		t.Fatal(err)
	}
	want := []string{"outer-in", "inner-in", "app", "inner-out", "outer-out"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
