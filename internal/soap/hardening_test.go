package soap

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsgossip/internal/metrics"
)

// Inbound hardening: a misbehaving sender — oversized, truncated, or
// garbage bytes — must always get a clean Sender fault and a counter
// bump, never a hang, a partial read, or an unclassified 500.

func postRecorded(t *testing.T, body string, contentLength int64) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(body))
	req.ContentLength = contentLength
	rec := httptest.NewRecorder()
	NewHTTPServer(echoHandler()).ServeHTTP(rec, req)
	return rec
}

func faultFromRecorder(t *testing.T, rec *httptest.ResponseRecorder) *Fault {
	t.Helper()
	env, err := Decode(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("response body is not an envelope: %v", err)
	}
	f := FaultFrom(env)
	if f == nil {
		t.Fatalf("response is not a fault: %s", rec.Body.String())
	}
	return f
}

func TestHTTPRejectsDeclaredOversize(t *testing.T) {
	reg := metrics.NewRegistry()
	InstallWireMetrics(reg)
	defer InstallWireMetrics(nil)

	rec := postRecorded(t, "irrelevant", maxEnvelopeBytes+1)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if f := faultFromRecorder(t, rec); f.Code.Value != CodeSender {
		t.Fatalf("fault code = %q, want Sender", f.Code.Value)
	}
	if got := reg.CounterVec("soap_inbound_rejects_total", "reason").With("oversize").Value(); got != 1 {
		t.Fatalf("oversize rejects = %d, want 1", got)
	}
}

func TestHTTPRejectsTruncatedBody(t *testing.T) {
	reg := metrics.NewRegistry()
	InstallWireMetrics(reg)
	defer InstallWireMetrics(nil)

	// Declared length of 100 bytes, body ends after 5: the exact read must
	// surface the short body as a Sender fault, not block for more bytes.
	rec := postRecorded(t, "short", 100)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if f := faultFromRecorder(t, rec); f.Code.Value != CodeSender {
		t.Fatalf("fault code = %q, want Sender", f.Code.Value)
	}
	if got := reg.CounterVec("soap_inbound_rejects_total", "reason").With("truncated").Value(); got != 1 {
		t.Fatalf("truncated rejects = %d, want 1", got)
	}
}

func TestHTTPRejectsUndeclaredOversize(t *testing.T) {
	reg := metrics.NewRegistry()
	InstallWireMetrics(reg)
	defer InstallWireMetrics(nil)

	body := bytes.NewReader(make([]byte, maxEnvelopeBytes+4096))
	req := httptest.NewRequest(http.MethodPost, "/", body)
	req.ContentLength = -1
	rec := httptest.NewRecorder()
	NewHTTPServer(echoHandler()).ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if got := reg.CounterVec("soap_inbound_rejects_total", "reason").With("oversize").Value(); got != 1 {
		t.Fatalf("oversize rejects = %d, want 1", got)
	}
}

func TestHTTPReadErrorReject(t *testing.T) {
	reg := metrics.NewRegistry()
	InstallWireMetrics(reg)
	defer InstallWireMetrics(nil)

	req := httptest.NewRequest(http.MethodPost, "/", errReader{errors.New("conn reset")})
	req.ContentLength = -1
	rec := httptest.NewRecorder()
	NewHTTPServer(echoHandler()).ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if got := reg.CounterVec("soap_inbound_rejects_total", "reason").With("read").Value(); got != 1 {
		t.Fatalf("read rejects = %d, want 1", got)
	}
}

type errReader struct{ err error }

func (r errReader) Read([]byte) (int, error) { return 0, r.err }

func TestDecodeOversize(t *testing.T) {
	reg := metrics.NewRegistry()
	InstallWireMetrics(reg)
	defer InstallWireMetrics(nil)

	if _, err := Decode(make([]byte, maxEnvelopeBytes+1)); err == nil {
		t.Fatal("oversized envelope decoded")
	}
	if got := reg.CounterVec("soap_decode_errors_total", "reason").With("oversize").Value(); got != 1 {
		t.Fatalf("oversize decode errors = %d, want 1", got)
	}
}

func TestDecodeMalformedCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	InstallWireMetrics(reg)
	defer InstallWireMetrics(nil)

	for _, data := range [][]byte{
		[]byte("not xml at all"),
		[]byte(`<s:Envelope xmlns:s="http://www.w3.org/2003/05/soap-envelope"><s:Body>`), // truncated mid-document
	} {
		if _, err := Decode(data); err == nil {
			t.Fatalf("malformed input decoded: %q", data)
		}
	}
	if got := reg.CounterVec("soap_decode_errors_total", "reason").With("malformed").Value(); got != 2 {
		t.Fatalf("malformed decode errors = %d, want 2", got)
	}
}

// Overload shedding contract over the HTTP binding: a fault carrying a
// retry-after hint maps to 503 + Retry-After on the server and comes back
// out of the client as a *Fault whose hint survives the wire.

func TestHTTPSheddingStatusAndHeader(t *testing.T) {
	h := HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		return nil, NewOverloadedFault("admission queue full", 1500*time.Millisecond)
	})
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(mustEncodeEnv(t)))
	rec := httptest.NewRecorder()
	NewHTTPServer(h).ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q (1500ms rounded up)", got, "2")
	}
	f := faultFromRecorder(t, rec)
	after, ok := f.RetryAfter()
	if !ok || after != 1500*time.Millisecond {
		t.Fatalf("decoded hint = (%v, %v), want (1.5s, true)", after, ok)
	}
}

func mustEncodeEnv(t *testing.T) string {
	t.Helper()
	env := NewEnvelope()
	if err := env.SetBody(testBody{Value: "v"}); err != nil {
		t.Fatal(err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestHTTPClientSeesRetryAfterHint(t *testing.T) {
	srv := httptest.NewServer(NewHTTPServer(HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		return nil, NewOverloadedFault("shedding", 250*time.Millisecond)
	})))
	defer srv.Close()
	client := NewHTTPClient(srv.Client())

	env := newCallEnv(t, srv.URL, "urn:x", testBody{Value: "v"})
	err := client.Send(context.Background(), srv.URL, env)
	if err == nil {
		t.Fatal("shed send succeeded")
	}
	after, ok := RetryAfterHint(err)
	if !ok || after != 250*time.Millisecond {
		t.Fatalf("hint = (%v, %v), want (250ms, true) from %v", after, ok, err)
	}
	if IsSenderFault(err) {
		t.Fatal("overload fault classified as sender fault")
	}
}

func TestHTTPSenderFaultIs400(t *testing.T) {
	srv := httptest.NewServer(NewHTTPServer(HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		return nil, NewFault(CodeSender, "bad payload")
	})))
	defer srv.Close()
	client := NewHTTPClient(srv.Client())

	env := newCallEnv(t, srv.URL, "urn:x", testBody{Value: "v"})
	err := client.Send(context.Background(), srv.URL, env)
	if !IsSenderFault(err) {
		t.Fatalf("err = %v, want sender fault", err)
	}
	if err := client.Send(context.Background(), srv.URL, env); err == nil {
		t.Fatal("second send of the same bytes succeeded")
	}
	// And the raw status the binding chose:
	resp, err := srv.Client().Post(srv.URL, ContentType, strings.NewReader(mustEncodeEnv(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// The rejects must also land when the fault envelope itself round-trips
// through Decode on the sender side (client fault extraction path).
func TestHTTPServerRejectCountsAreDistinct(t *testing.T) {
	reg := metrics.NewRegistry()
	InstallWireMetrics(reg)
	defer InstallWireMetrics(nil)

	postRecorded(t, "x", maxEnvelopeBytes+1) // oversize
	postRecorded(t, "x", 50)                 // truncated
	joined := reg.Snapshot()
	for _, want := range []string{
		`soap_inbound_rejects_total{reason="oversize"}=1`,
		`soap_inbound_rejects_total{reason="truncated"}=1`,
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("snapshot missing %s:\n%s", want, joined)
		}
	}
}
