package soap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxEnvelopeBytes bounds inbound message size (defense against unbounded
// reads; gossip notifications are small).
const maxEnvelopeBytes = 8 << 20

// HTTPServer adapts a Handler to the SOAP 1.2 HTTP binding.
type HTTPServer struct {
	handler Handler
}

var _ http.Handler = (*HTTPServer)(nil)

// NewHTTPServer wraps h for serving over HTTP.
func NewHTTPServer(h Handler) *HTTPServer {
	return &HTTPServer{handler: h}
}

// ServeHTTP implements the SOAP 1.2 request-response and one-way MEPs:
// a nil handler response yields 202 Accepted, a fault yields 500.
func (s *HTTPServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint requires POST", http.StatusMethodNotAllowed)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelopeBytes))
	if err != nil {
		http.Error(w, "read request: "+err.Error(), http.StatusBadRequest)
		return
	}
	env, err := Decode(data)
	if err != nil {
		writeFault(w, NewFault(CodeSender, err.Error()))
		return
	}
	req := &Request{
		Addressing: env.Addressing(),
		Envelope:   env,
		Remote:     r.RemoteAddr,
	}
	resp, err := s.handler.HandleSOAP(r.Context(), req)
	if err != nil {
		writeFault(w, AsFault(err))
		return
	}
	if resp == nil {
		w.WriteHeader(http.StatusAccepted)
		return
	}
	out, err := resp.Encode()
	if err != nil {
		writeFault(w, NewFault(CodeReceiver, err.Error()))
		return
	}
	w.Header().Set("Content-Type", ContentType+"; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

func writeFault(w http.ResponseWriter, f *Fault) {
	env, err := FaultEnvelope(f)
	if err != nil {
		http.Error(w, f.Error(), http.StatusInternalServerError)
		return
	}
	out, err := env.Encode()
	if err != nil {
		http.Error(w, f.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentType+"; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(out)
}

// Caller sends SOAP messages to endpoint addresses. It is implemented by the
// HTTP client and by the in-memory bus, so role code is binding-agnostic.
type Caller interface {
	// Call performs a request-response exchange.
	Call(ctx context.Context, to string, env *Envelope) (*Envelope, error)
	// Send performs a one-way exchange.
	Send(ctx context.Context, to string, env *Envelope) error
}

// HTTPClient is a SOAP 1.2 client over net/http.
type HTTPClient struct {
	hc *http.Client
}

var (
	_ Caller        = (*HTTPClient)(nil)
	_ EncodedSender = (*HTTPClient)(nil)
)

// NewHTTPClient wraps hc (nil means http.DefaultClient).
func NewHTTPClient(hc *http.Client) *HTTPClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &HTTPClient{hc: hc}
}

// Call posts the envelope to the endpoint and decodes the response envelope.
// A SOAP fault in the response is returned as a *Fault error.
func (c *HTTPClient) Call(ctx context.Context, to string, env *Envelope) (*Envelope, error) {
	respBody, status, err := c.post(ctx, to, env)
	if err != nil {
		return nil, err
	}
	if status == http.StatusAccepted || len(respBody) == 0 {
		return nil, nil
	}
	resp, err := Decode(respBody)
	if err != nil {
		return nil, fmt.Errorf("call %s: %w", to, err)
	}
	if f := FaultFrom(resp); f != nil {
		return nil, f
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("call %s: unexpected status %d", to, status)
	}
	return resp, nil
}

// Send posts the envelope and discards any response body.
func (c *HTTPClient) Send(ctx context.Context, to string, env *Envelope) error {
	data, err := env.Encode()
	if err != nil {
		return err
	}
	return c.SendEncoded(ctx, to, data)
}

// SendEncoded posts an already-serialized envelope, skipping the redundant
// encode of the fan-out hot path.
func (c *HTTPClient) SendEncoded(ctx context.Context, to string, data []byte) error {
	respBody, status, err := c.postBytes(ctx, to, data)
	if err != nil {
		return err
	}
	if status >= 400 {
		if resp, derr := Decode(respBody); derr == nil {
			if f := FaultFrom(resp); f != nil {
				return f
			}
		}
		return fmt.Errorf("send %s: unexpected status %d", to, status)
	}
	return nil
}

func (c *HTTPClient) post(ctx context.Context, to string, env *Envelope) ([]byte, int, error) {
	data, err := env.Encode()
	if err != nil {
		return nil, 0, err
	}
	return c.postBytes(ctx, to, data)
}

func (c *HTTPClient) postBytes(ctx context.Context, to string, data []byte) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, to, bytes.NewReader(data))
	if err != nil {
		return nil, 0, fmt.Errorf("post %s: %w", to, err)
	}
	req.Header.Set("Content-Type", ContentType+"; charset=utf-8")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("post %s: %w", to, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxEnvelopeBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("read response from %s: %w", to, err)
	}
	return body, resp.StatusCode, nil
}

// ErrUnknownEndpoint reports a send to an address not present on the bus.
var ErrUnknownEndpoint = errors.New("soap: unknown endpoint")
