package soap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxEnvelopeBytes bounds inbound message size (defense against unbounded
// reads; gossip notifications are small).
const maxEnvelopeBytes = 8 << 20

// HTTPServer adapts a Handler to the SOAP 1.2 HTTP binding.
type HTTPServer struct {
	handler Handler
}

var _ http.Handler = (*HTTPServer)(nil)

// NewHTTPServer wraps h for serving over HTTP.
func NewHTTPServer(h Handler) *HTTPServer {
	return &HTTPServer{handler: h}
}

// ServeHTTP implements the SOAP 1.2 request-response and one-way MEPs:
// a nil handler response yields 202 Accepted, a fault yields 500. The
// request body is read into a pooled buffer that the decoded envelope
// aliases for the duration of the exchange; by the time the buffer is
// recycled the handler has returned and any response has been serialized
// (copying whatever blocks it shared), so no pooled memory escapes.
func (s *HTTPServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint requires POST", http.StatusMethodNotAllowed)
		return
	}
	data, err := readRequestBody(r)
	if err != nil {
		http.Error(w, "read request: "+err.Error(), http.StatusBadRequest)
		return
	}
	defer putBytes(data)
	env, err := Decode(data)
	if err != nil {
		writeFault(w, NewFault(CodeSender, err.Error()))
		return
	}
	req := &Request{Envelope: env, Remote: r.RemoteAddr}
	resp, err := s.handler.HandleSOAP(r.Context(), req)
	if err != nil {
		writeFault(w, AsFault(err))
		return
	}
	if resp == nil {
		w.WriteHeader(http.StatusAccepted)
		return
	}
	out, err := resp.Encode()
	if err != nil {
		writeFault(w, NewFault(CodeReceiver, err.Error()))
		return
	}
	w.Header().Set("Content-Type", ContentType+"; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// readRequestBody reads the request body into a pooled buffer: one
// exactly-sized read when Content-Length is declared, a doubling read
// through the pool otherwise. Reads are capped at maxEnvelopeBytes, like
// the LimitReader this replaces. The caller recycles with putBytes.
func readRequestBody(r *http.Request) ([]byte, error) {
	if n := r.ContentLength; n >= 0 && n <= maxEnvelopeBytes {
		buf := getBytes(int(n))[:n]
		if _, err := io.ReadFull(r.Body, buf); err != nil {
			putBytes(buf)
			return nil, err
		}
		return buf, nil
	}
	// Views are clamped to the cap so the doubling can never read past
	// maxEnvelopeBytes, whatever capacity the pool handed back.
	buf := getBytes(4096)
	buf = buf[:min(cap(buf), maxEnvelopeBytes)]
	total := 0
	for {
		if total == len(buf) {
			if total >= maxEnvelopeBytes {
				return buf[:total], nil // truncate at the cap: Decode will reject
			}
			bigger := getBytes(2 * len(buf))
			bigger = bigger[:min(cap(bigger), maxEnvelopeBytes)]
			copy(bigger, buf[:total])
			putBytes(buf)
			buf = bigger
		}
		n, err := r.Body.Read(buf[total:])
		total += n
		if err == io.EOF {
			return buf[:total], nil
		}
		if err != nil {
			putBytes(buf)
			return nil, err
		}
	}
}

func writeFault(w http.ResponseWriter, f *Fault) {
	env, err := FaultEnvelope(f)
	if err != nil {
		http.Error(w, f.Error(), http.StatusInternalServerError)
		return
	}
	out, err := env.Encode()
	if err != nil {
		http.Error(w, f.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", ContentType+"; charset=utf-8")
	w.WriteHeader(http.StatusInternalServerError)
	_, _ = w.Write(out)
}

// Caller sends SOAP messages to endpoint addresses. It is implemented by the
// HTTP client and by the in-memory bus, so role code is binding-agnostic.
type Caller interface {
	// Call performs a request-response exchange.
	Call(ctx context.Context, to string, env *Envelope) (*Envelope, error)
	// Send performs a one-way exchange.
	Send(ctx context.Context, to string, env *Envelope) error
}

// HTTPClient is a SOAP 1.2 client over net/http.
type HTTPClient struct {
	hc *http.Client
}

var (
	_ Caller        = (*HTTPClient)(nil)
	_ EncodedSender = (*HTTPClient)(nil)
)

// NewHTTPClient wraps hc (nil means http.DefaultClient).
func NewHTTPClient(hc *http.Client) *HTTPClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &HTTPClient{hc: hc}
}

// Call posts the envelope to the endpoint and decodes the response envelope.
// A SOAP fault in the response is returned as a *Fault error.
func (c *HTTPClient) Call(ctx context.Context, to string, env *Envelope) (*Envelope, error) {
	respBody, status, err := c.post(ctx, to, env)
	if err != nil {
		return nil, err
	}
	if status == http.StatusAccepted || len(respBody) == 0 {
		return nil, nil
	}
	resp, err := Decode(respBody)
	if err != nil {
		return nil, fmt.Errorf("call %s: %w", to, err)
	}
	if f := FaultFrom(resp); f != nil {
		return nil, f
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("call %s: unexpected status %d", to, status)
	}
	return resp, nil
}

// Send posts the envelope and discards any response body.
func (c *HTTPClient) Send(ctx context.Context, to string, env *Envelope) error {
	data, err := env.Encode()
	if err != nil {
		return err
	}
	return c.SendEncoded(ctx, to, data)
}

// SendEncoded posts an already-serialized envelope, skipping the redundant
// encode of the fan-out hot path.
func (c *HTTPClient) SendEncoded(ctx context.Context, to string, data []byte) error {
	respBody, status, err := c.postBytes(ctx, to, data)
	if err != nil {
		return err
	}
	if status >= 400 {
		if resp, derr := Decode(respBody); derr == nil {
			if f := FaultFrom(resp); f != nil {
				return f
			}
		}
		return fmt.Errorf("send %s: unexpected status %d", to, status)
	}
	return nil
}

func (c *HTTPClient) post(ctx context.Context, to string, env *Envelope) ([]byte, int, error) {
	data, err := env.Encode()
	if err != nil {
		return nil, 0, err
	}
	return c.postBytes(ctx, to, data)
}

func (c *HTTPClient) postBytes(ctx context.Context, to string, data []byte) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, to, bytes.NewReader(data))
	if err != nil {
		return nil, 0, fmt.Errorf("post %s: %w", to, err)
	}
	req.Header.Set("Content-Type", ContentType+"; charset=utf-8")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("post %s: %w", to, err)
	}
	defer resp.Body.Close()
	// Responses escape to the caller (the decoded envelope aliases them),
	// so they are not pooled — but a declared Content-Length still buys an
	// exactly-sized single read instead of ReadAll's doubling copies.
	if n := resp.ContentLength; n >= 0 && n <= maxEnvelopeBytes {
		body := make([]byte, n)
		if _, err := io.ReadFull(resp.Body, body); err != nil {
			return nil, 0, fmt.Errorf("read response from %s: %w", to, err)
		}
		return body, resp.StatusCode, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxEnvelopeBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("read response from %s: %w", to, err)
	}
	return body, resp.StatusCode, nil
}

// ErrUnknownEndpoint reports a send to an address not present on the bus.
var ErrUnknownEndpoint = errors.New("soap: unknown endpoint")
