package soap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// MaxEnvelopeBytes is the wire-level cap on a single SOAP envelope: the
// HTTP binding rejects larger request bodies with a Sender fault before
// reading them in, and Decode refuses larger buffers on every binding
// (defense against unbounded reads; gossip notifications are small).
const MaxEnvelopeBytes = 8 << 20

// maxEnvelopeBytes is the package-internal shorthand for the cap.
const maxEnvelopeBytes = MaxEnvelopeBytes

// HTTPServer adapts a Handler to the SOAP 1.2 HTTP binding.
type HTTPServer struct {
	handler Handler
}

var _ http.Handler = (*HTTPServer)(nil)

// NewHTTPServer wraps h for serving over HTTP.
func NewHTTPServer(h Handler) *HTTPServer {
	return &HTTPServer{handler: h}
}

// ServeHTTP implements the SOAP 1.2 request-response and one-way MEPs:
// a nil handler response yields 202 Accepted, a fault yields the status
// writeFault maps it to. Misbehaving senders — an oversized (declared or
// actual) body, a body shorter than its Content-Length, a mid-body read
// error — are rejected with a Sender fault and a reject counter bump
// before any decode work. The request body is read into a pooled buffer
// that the decoded envelope aliases for the duration of the exchange; by
// the time the buffer is recycled the handler has returned and any
// response has been serialized (copying whatever blocks it shared), so no
// pooled memory escapes.
func (s *HTTPServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "soap endpoint requires POST", http.StatusMethodNotAllowed)
		return
	}
	if r.ContentLength > maxEnvelopeBytes {
		countInboundReject(rejectOversize)
		writeFault(w, NewFault(CodeSender, fmt.Sprintf(
			"declared body of %d bytes exceeds the %d-byte envelope cap", r.ContentLength, maxEnvelopeBytes)))
		return
	}
	data, err := readRequestBody(r)
	if err != nil {
		switch {
		case errors.Is(err, errBodyOversize):
			countInboundReject(rejectOversize)
		case errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF):
			countInboundReject(rejectTruncated)
		default:
			countInboundReject(rejectRead)
		}
		writeFault(w, NewFault(CodeSender, "read request: "+err.Error()))
		return
	}
	defer putBytes(data)
	env, err := Decode(data)
	if err != nil {
		writeFault(w, NewFault(CodeSender, err.Error()))
		return
	}
	req := &Request{Envelope: env, Remote: r.RemoteAddr}
	resp, err := s.handler.HandleSOAP(r.Context(), req)
	if err != nil {
		writeFault(w, AsFault(err))
		return
	}
	if resp == nil {
		w.WriteHeader(http.StatusAccepted)
		return
	}
	out, err := resp.Encode()
	if err != nil {
		writeFault(w, NewFault(CodeReceiver, err.Error()))
		return
	}
	w.Header().Set("Content-Type", ContentType+"; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// errBodyOversize reports a chunked request body that kept producing bytes
// past the envelope cap.
var errBodyOversize = errors.New("request body exceeds the envelope size cap")

// readRequestBody reads the request body into a pooled buffer: one
// exactly-sized read when Content-Length is declared, a doubling read
// through the pool otherwise. A body shorter than its declared length
// surfaces as io.ErrUnexpectedEOF (or io.EOF when empty); an undeclared
// body still producing bytes at maxEnvelopeBytes surfaces as
// errBodyOversize — neither ever blocks past the bytes actually sent or
// reads past the cap. The caller recycles with putBytes.
func readRequestBody(r *http.Request) ([]byte, error) {
	if n := r.ContentLength; n >= 0 && n <= maxEnvelopeBytes {
		buf := getBytes(int(n))[:n]
		if _, err := io.ReadFull(r.Body, buf); err != nil {
			putBytes(buf)
			return nil, err
		}
		return buf, nil
	}
	// Views are clamped to the cap so the doubling can never read past
	// maxEnvelopeBytes, whatever capacity the pool handed back.
	buf := getBytes(4096)
	buf = buf[:min(cap(buf), maxEnvelopeBytes)]
	total := 0
	for {
		if total == len(buf) {
			if total >= maxEnvelopeBytes {
				// At the cap: the body is oversized unless it ends here.
				var probe [1]byte
				n, err := r.Body.Read(probe[:])
				if n == 0 && err == io.EOF {
					return buf[:total], nil
				}
				putBytes(buf)
				if n > 0 || err == nil {
					return nil, errBodyOversize
				}
				return nil, err
			}
			bigger := getBytes(2 * len(buf))
			bigger = bigger[:min(cap(bigger), maxEnvelopeBytes)]
			copy(bigger, buf[:total])
			putBytes(buf)
			buf = bigger
		}
		n, err := r.Body.Read(buf[total:])
		total += n
		if err == io.EOF {
			return buf[:total], nil
		}
		if err != nil {
			putBytes(buf)
			return nil, err
		}
	}
}

// writeFault serializes f and maps it onto the HTTP binding's status
// space: a fault carrying a retry-after hint is 503 with the hint
// mirrored as a Retry-After header (whole seconds, rounded up), a Sender
// fault is 400, everything else 500.
func writeFault(w http.ResponseWriter, f *Fault) {
	env, err := FaultEnvelope(f)
	if err != nil {
		http.Error(w, f.Error(), http.StatusInternalServerError)
		return
	}
	out, err := env.Encode()
	if err != nil {
		http.Error(w, f.Error(), http.StatusInternalServerError)
		return
	}
	status := http.StatusInternalServerError
	if after, ok := f.RetryAfter(); ok {
		status = http.StatusServiceUnavailable
		secs := int64((after + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	} else if f.Code.Value == CodeSender {
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", ContentType+"; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(out)
}

// Caller sends SOAP messages to endpoint addresses. It is implemented by the
// HTTP client and by the in-memory bus, so role code is binding-agnostic.
type Caller interface {
	// Call performs a request-response exchange.
	Call(ctx context.Context, to string, env *Envelope) (*Envelope, error)
	// Send performs a one-way exchange.
	Send(ctx context.Context, to string, env *Envelope) error
}

// HTTPClient is a SOAP 1.2 client over net/http.
type HTTPClient struct {
	hc *http.Client
}

var (
	_ Caller        = (*HTTPClient)(nil)
	_ EncodedSender = (*HTTPClient)(nil)
)

// NewHTTPClient wraps hc (nil means http.DefaultClient).
func NewHTTPClient(hc *http.Client) *HTTPClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &HTTPClient{hc: hc}
}

// Call posts the envelope to the endpoint and decodes the response envelope.
// A SOAP fault in the response is returned as a *Fault error.
func (c *HTTPClient) Call(ctx context.Context, to string, env *Envelope) (*Envelope, error) {
	respBody, status, err := c.post(ctx, to, env)
	if err != nil {
		return nil, err
	}
	if status == http.StatusAccepted || len(respBody) == 0 {
		return nil, nil
	}
	resp, err := Decode(respBody)
	if err != nil {
		return nil, fmt.Errorf("call %s: %w", to, err)
	}
	if f := FaultFrom(resp); f != nil {
		return nil, f
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("call %s: unexpected status %d", to, status)
	}
	return resp, nil
}

// Send posts the envelope and discards any response body.
func (c *HTTPClient) Send(ctx context.Context, to string, env *Envelope) error {
	data, err := env.Encode()
	if err != nil {
		return err
	}
	return c.SendEncoded(ctx, to, data)
}

// SendEncoded posts an already-serialized envelope, skipping the redundant
// encode of the fan-out hot path.
func (c *HTTPClient) SendEncoded(ctx context.Context, to string, data []byte) error {
	respBody, status, err := c.postBytes(ctx, to, data)
	if err != nil {
		return err
	}
	if status >= 400 {
		if resp, derr := Decode(respBody); derr == nil {
			if f := FaultFrom(resp); f != nil {
				return f
			}
		}
		return fmt.Errorf("send %s: unexpected status %d", to, status)
	}
	return nil
}

func (c *HTTPClient) post(ctx context.Context, to string, env *Envelope) ([]byte, int, error) {
	data, err := env.Encode()
	if err != nil {
		return nil, 0, err
	}
	return c.postBytes(ctx, to, data)
}

func (c *HTTPClient) postBytes(ctx context.Context, to string, data []byte) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, to, bytes.NewReader(data))
	if err != nil {
		return nil, 0, fmt.Errorf("post %s: %w", to, err)
	}
	req.Header.Set("Content-Type", ContentType+"; charset=utf-8")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("post %s: %w", to, err)
	}
	defer resp.Body.Close()
	// Responses escape to the caller (the decoded envelope aliases them),
	// so they are not pooled — but a declared Content-Length still buys an
	// exactly-sized single read instead of ReadAll's doubling copies.
	if n := resp.ContentLength; n >= 0 && n <= maxEnvelopeBytes {
		body := make([]byte, n)
		if _, err := io.ReadFull(resp.Body, body); err != nil {
			return nil, 0, fmt.Errorf("read response from %s: %w", to, err)
		}
		return body, resp.StatusCode, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxEnvelopeBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("read response from %s: %w", to, err)
	}
	return body, resp.StatusCode, nil
}

// ErrUnknownEndpoint reports a send to an address not present on the bus.
var ErrUnknownEndpoint = errors.New("soap: unknown endpoint")
