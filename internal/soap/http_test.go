package soap

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"wsgossip/internal/wsa"
)

func echoHandler() Handler {
	return HandlerFunc(func(_ context.Context, req *Request) (*Envelope, error) {
		var in testBody
		if err := req.Envelope.DecodeBody(&in); err != nil {
			return nil, NewFault(CodeSender, err.Error())
		}
		resp := NewEnvelope()
		if err := resp.SetAddressing(req.Addressing().Reply("urn:echoed")); err != nil {
			return nil, err
		}
		if err := resp.SetBody(testBody{Value: "echo:" + in.Value, N: in.N + 1}); err != nil {
			return nil, err
		}
		return resp, nil
	})
}

func newCallEnv(t *testing.T, to, action string, body any) *Envelope {
	t.Helper()
	env := NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{To: to, Action: action, MessageID: wsa.NewMessageID()}); err != nil {
		t.Fatal(err)
	}
	if err := env.SetBody(body); err != nil {
		t.Fatal(err)
	}
	return env
}

func TestHTTPCallRoundTrip(t *testing.T) {
	srv := httptest.NewServer(NewHTTPServer(echoHandler()))
	defer srv.Close()
	client := NewHTTPClient(srv.Client())

	env := newCallEnv(t, srv.URL, "urn:echo", testBody{Value: "hi", N: 1})
	resp, err := client.Call(context.Background(), srv.URL, env)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	var out testBody
	if err := resp.DecodeBody(&out); err != nil {
		t.Fatal(err)
	}
	if out.Value != "echo:hi" || out.N != 2 {
		t.Fatalf("response = %+v", out)
	}
}

func TestHTTPOneWay(t *testing.T) {
	received := make(chan string, 1)
	h := HandlerFunc(func(_ context.Context, req *Request) (*Envelope, error) {
		var in testBody
		if err := req.Envelope.DecodeBody(&in); err != nil {
			return nil, err
		}
		received <- in.Value
		return nil, nil // one-way
	})
	srv := httptest.NewServer(NewHTTPServer(h))
	defer srv.Close()
	client := NewHTTPClient(srv.Client())

	env := newCallEnv(t, srv.URL, "urn:notify", testBody{Value: "fire"})
	if err := client.Send(context.Background(), srv.URL, env); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case v := <-received:
		if v != "fire" {
			t.Fatalf("received %q", v)
		}
	default:
		t.Fatal("handler not invoked")
	}
}

func TestHTTPFaultPropagation(t *testing.T) {
	h := HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		return nil, NewFault(CodeSender, "rejected")
	})
	srv := httptest.NewServer(NewHTTPServer(h))
	defer srv.Close()
	client := NewHTTPClient(srv.Client())

	env := newCallEnv(t, srv.URL, "urn:x", testBody{Value: "v"})
	_, err := client.Call(context.Background(), srv.URL, env)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if f.Reason.Text != "rejected" {
		t.Fatalf("fault reason = %q", f.Reason.Text)
	}
}

func TestHTTPRejectsGet(t *testing.T) {
	srv := httptest.NewServer(NewHTTPServer(echoHandler()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPRejectsGarbage(t *testing.T) {
	srv := httptest.NewServer(NewHTTPServer(echoHandler()))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL, ContentType, strings.NewReader("not xml"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (Sender fault)", resp.StatusCode)
	}
}

func TestMemBusCall(t *testing.T) {
	bus := NewMemBus()
	bus.Register("mem://svc", echoHandler())

	env := newCallEnv(t, "mem://svc", "urn:echo", testBody{Value: "m", N: 10})
	resp, err := bus.Call(context.Background(), "mem://svc", env)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	var out testBody
	if err := resp.DecodeBody(&out); err != nil {
		t.Fatal(err)
	}
	if out.Value != "echo:m" || out.N != 11 {
		t.Fatalf("response = %+v", out)
	}
}

func TestMemBusUnknownEndpoint(t *testing.T) {
	bus := NewMemBus()
	env := newCallEnv(t, "mem://ghost", "urn:x", testBody{})
	if _, err := bus.Call(context.Background(), "mem://ghost", env); err == nil {
		t.Fatal("call to unknown endpoint succeeded")
	}
	if err := bus.Send(context.Background(), "mem://ghost", env); err == nil {
		t.Fatal("send to unknown endpoint succeeded")
	}
}

func TestMemBusUnregister(t *testing.T) {
	bus := NewMemBus()
	bus.Register("mem://svc", echoHandler())
	bus.Unregister("mem://svc")
	env := newCallEnv(t, "mem://svc", "urn:x", testBody{})
	if err := bus.Send(context.Background(), "mem://svc", env); err == nil {
		t.Fatal("send to unregistered endpoint succeeded")
	}
}

// TestMemBusWireFidelity verifies MemBus round-trips through the codec, so
// header pass-through behaviour matches HTTP exactly.
func TestMemBusWireFidelity(t *testing.T) {
	bus := NewMemBus()
	var sawHeader bool
	bus.Register("mem://svc", HandlerFunc(func(_ context.Context, req *Request) (*Envelope, error) {
		var h testHeader
		if err := req.Envelope.DecodeHeader("urn:test", "Meta", &h); err == nil && h.Tag == "t" {
			sawHeader = true
		}
		return nil, nil
	}))
	env := newCallEnv(t, "mem://svc", "urn:x", testBody{Value: "v"})
	if err := env.AddHeader(testHeader{Tag: "t"}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Send(context.Background(), "mem://svc", env); err != nil {
		t.Fatal(err)
	}
	if !sawHeader {
		t.Fatal("header did not survive the mem-bus wire cycle")
	}
}

func TestMemBusFault(t *testing.T) {
	bus := NewMemBus()
	bus.Register("mem://svc", HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		return nil, NewFault(CodeReceiver, "down")
	}))
	env := newCallEnv(t, "mem://svc", "urn:x", testBody{})
	_, err := bus.Call(context.Background(), "mem://svc", env)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
}

// TestReadRequestBodyCap: without a declared Content-Length the pooled
// doubling read stops at exactly maxEnvelopeBytes — a body still producing
// bytes there is an explicit oversize error, never a silent truncation or
// a read past the cap.
func TestReadRequestBodyCap(t *testing.T) {
	body := bytes.NewReader(make([]byte, maxEnvelopeBytes+1<<20))
	req := httptest.NewRequest(http.MethodPost, "/", struct{ io.Reader }{body})
	req.ContentLength = -1
	if _, err := readRequestBody(req); !errors.Is(err, errBodyOversize) {
		t.Fatalf("err = %v, want errBodyOversize", err)
	}
	if rest := body.Len(); rest != 1<<20-1 {
		t.Fatalf("read past the cap: %d unread bytes remain, want %d", rest, 1<<20-1)
	}
}

// TestReadRequestBodyAtCap: a body of exactly maxEnvelopeBytes with no
// declared length is legal — the cap probe must see EOF and accept it.
func TestReadRequestBodyAtCap(t *testing.T) {
	body := bytes.NewReader(make([]byte, maxEnvelopeBytes))
	req := httptest.NewRequest(http.MethodPost, "/", struct{ io.Reader }{body})
	req.ContentLength = -1
	data, err := readRequestBody(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != maxEnvelopeBytes {
		t.Fatalf("read %d bytes, want %d", len(data), maxEnvelopeBytes)
	}
	putBytes(data)
}
