package soap

import "sync"

// Interner deduplicates stored envelope clones across many node stores. In a
// simulated cluster every Disseminator's lazy/pull store holds its own deep
// Clone of each gossiped notification; with N nodes that is N copies of
// byte-identical header and body blocks. An Interner keyed by the caller's
// identity string (message ID plus any mutating fields, e.g. hop count)
// returns one shared clone instead, so N stores reference a single copy.
//
// Safety rests on the store-side read discipline: stored envelopes are never
// mutated in place — readers take Snapshot() (copy-on-write block lists)
// before re-addressing or editing, and Raw bytes are treated as immutable
// package-wide. The interner is bounded: when full, the oldest key is
// evicted FIFO, degrading gracefully to per-store clones for evicted keys.
// Safe for concurrent use.
type Interner struct {
	mu    sync.Mutex
	cap   int
	items map[string]*Envelope
	keys  []string // insertion order; keys[start:] live
	start int

	hits   int64
	misses int64
}

// DefaultInternerSize bounds an Interner created with capacity <= 0. Sized
// to the working set of in-flight notifications, not the population.
const DefaultInternerSize = 4096

// NewInterner returns an interner holding at most capacity distinct keys.
func NewInterner(capacity int) *Interner {
	if capacity <= 0 {
		capacity = DefaultInternerSize
	}
	return &Interner{
		cap:   capacity,
		items: make(map[string]*Envelope, min(capacity, 1024)),
	}
}

// Clone returns a deep clone of env shared by every caller presenting the
// same key. The caller must treat the result as immutable except through
// Snapshot (the discipline all store paths already follow). key must
// identify the envelope's content exactly: two envelopes whose stored form
// differs (different hop budget, different body) must use different keys.
func (in *Interner) Clone(key string, env *Envelope) *Envelope {
	in.mu.Lock()
	if e, ok := in.items[key]; ok {
		in.hits++
		in.mu.Unlock()
		return e
	}
	in.misses++
	in.mu.Unlock()

	// Clone outside the lock: deep-copying blocks is the expensive part and
	// contended stores would serialize on it. A racing double-clone for the
	// same key is harmless — one wins the map, both are valid.
	e := env.Clone()

	in.mu.Lock()
	defer in.mu.Unlock()
	if won, ok := in.items[key]; ok {
		return won
	}
	in.items[key] = e
	in.keys = append(in.keys, key)
	for len(in.items) > in.cap {
		delete(in.items, in.keys[in.start])
		in.keys[in.start] = ""
		in.start++
	}
	if in.start > len(in.keys)/2 && in.start > 64 {
		in.keys = append(in.keys[:0], in.keys[in.start:]...)
		in.start = 0
	}
	return e
}

// Stats returns the hit and miss counts since creation. In a healthy
// N-node simulation hits approach (N-1) x misses: one clone per
// notification, shared by every other store.
func (in *Interner) Stats() (hits, misses int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits, in.misses
}

// Len returns the number of interned envelopes currently held.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.items)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
