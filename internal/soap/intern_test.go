package soap

import (
	"fmt"
	"sync"
	"testing"
)

func internTestEnvelope(t *testing.T, body string) *Envelope {
	t.Helper()
	env := NewEnvelope()
	env.Body.Blocks = append(env.Body.Blocks, Block{Raw: []byte("<x>" + body + "</x>")})
	return env
}

func TestInternerSharesOneCloneAcrossKeys(t *testing.T) {
	in := NewInterner(16)
	env := internTestEnvelope(t, "payload")
	a := in.Clone("m1#3", env)
	b := in.Clone("m1#3", env)
	if a != b {
		t.Fatal("same key returned distinct clones")
	}
	if a == env {
		t.Fatal("interner returned the original instead of a clone")
	}
	c := in.Clone("m1#2", env)
	if c == a {
		t.Fatal("different keys shared one clone")
	}
	hits, misses := in.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 2", hits, misses)
	}
}

func TestInternerSharedCloneIsSnapshotSafe(t *testing.T) {
	in := NewInterner(16)
	env := internTestEnvelope(t, "shared")
	shared := in.Clone("k", env)
	snap := shared.Snapshot()
	snap.Body.Blocks = append(snap.Body.Blocks, Block{Raw: []byte("<extra/>")})
	again := in.Clone("k", env)
	if len(again.Body.Blocks) != 1 {
		t.Fatalf("mutating a snapshot leaked into the interned copy: %d body blocks", len(again.Body.Blocks))
	}
}

func TestInternerBoundedFIFO(t *testing.T) {
	in := NewInterner(8)
	env := internTestEnvelope(t, "x")
	for i := 0; i < 100; i++ {
		in.Clone(fmt.Sprintf("k%d", i), env)
	}
	if got := in.Len(); got != 8 {
		t.Fatalf("Len = %d, want capacity 8", got)
	}
	// Oldest keys evicted: re-cloning k0 is a miss, newest keys are hits.
	_, missesBefore := in.Stats()
	in.Clone("k0", env)
	_, missesAfter := in.Stats()
	if missesAfter != missesBefore+1 {
		t.Fatal("evicted key was still interned")
	}
	hitsBefore, _ := in.Stats()
	in.Clone("k99", env)
	hitsAfter, _ := in.Stats()
	if hitsAfter != hitsBefore+1 {
		t.Fatal("recent key was evicted out of FIFO order")
	}
}

func TestInternerConcurrent(t *testing.T) {
	in := NewInterner(64)
	env := internTestEnvelope(t, "c")
	var wg sync.WaitGroup
	results := make([]*Envelope, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := in.Clone("hot", env)
				if g == 0 && i == 199 {
					results[0] = e
				}
				results[g] = e
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(results); g++ {
		if results[g] != results[0] {
			t.Fatal("concurrent callers got distinct clones for one key")
		}
	}
}
