package soap

import (
	"context"
	"fmt"
	"sync"
)

// MemBus is an in-memory SOAP binding: endpoints register handlers under
// opaque addresses and exchanges go through a full encode/decode cycle, so
// wire behaviour (header pass-through, faults) matches the HTTP binding
// while allowing hundreds of nodes in one process.
//
// Request-response exchanges (Call) are synchronous. One-way exchanges
// (Send) are queued FIFO and drained iteratively: a Send issued from inside
// a handler is delivered after the current wave, giving the same
// breadth-first message ordering as an asynchronous network. Without this,
// hop-bounded dissemination would burn its hop budget down one depth-first
// chain — an artifact no real deployment exhibits. The top-level Send
// drains the whole cascade before returning, so tests and examples observe
// a completed dissemination.
type MemBus struct {
	mu        sync.RWMutex
	endpoints map[string]Handler

	qmu      sync.Mutex
	queue    []pendingSend
	head     int // next undelivered entry; the drain resets both when empty
	draining bool
}

type pendingSend struct {
	to   string
	data []byte
}

var (
	_ Caller        = (*MemBus)(nil)
	_ EncodedSender = (*MemBus)(nil)
)

// NewMemBus returns an empty bus.
func NewMemBus() *MemBus {
	return &MemBus{endpoints: make(map[string]Handler)}
}

// Register binds addr to h, replacing any previous binding.
func (b *MemBus) Register(addr string, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.endpoints[addr] = h
}

// Unregister removes addr from the bus (used for crash-fault injection).
func (b *MemBus) Unregister(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.endpoints, addr)
}

// Endpoints returns the registered addresses.
func (b *MemBus) Endpoints() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.endpoints))
	for a := range b.endpoints {
		out = append(out, a)
	}
	return out
}

func (b *MemBus) lookup(addr string) (Handler, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	h, ok := b.endpoints[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownEndpoint, addr)
	}
	return h, nil
}

// deliver round-trips the envelope through the codec so receivers observe
// exactly what they would see over HTTP.
func (b *MemBus) deliver(ctx context.Context, to string, env *Envelope) (*Envelope, error) {
	data, err := env.Encode()
	if err != nil {
		return nil, err
	}
	return b.deliverBytes(ctx, to, data)
}

func (b *MemBus) deliverBytes(ctx context.Context, to string, data []byte) (*Envelope, error) {
	h, err := b.lookup(to)
	if err != nil {
		return nil, err
	}
	decoded, err := Decode(data)
	if err != nil {
		return nil, err
	}
	// Addressing is parsed lazily (and cached on the envelope) when the
	// dispatcher or a handler first asks for it.
	return h.HandleSOAP(ctx, &Request{Envelope: decoded, Remote: "membus"})
}

// Call performs a request-response exchange. Handler errors are surfaced as
// *Fault, matching the HTTP binding.
func (b *MemBus) Call(ctx context.Context, to string, env *Envelope) (*Envelope, error) {
	resp, err := b.deliver(ctx, to, env)
	if err != nil {
		return nil, AsFault(err)
	}
	if f := FaultFrom(resp); f != nil {
		return nil, f
	}
	return resp, nil
}

// Send performs a one-way exchange, discarding any response envelope. The
// destination is validated immediately; delivery is FIFO-ordered behind any
// in-flight wave (see the type comment). Handler errors at the receiver are
// not reported back — one-way semantics, as over HTTP 202.
func (b *MemBus) Send(ctx context.Context, to string, env *Envelope) error {
	data, err := env.Encode()
	if err != nil {
		return err
	}
	return b.SendEncoded(ctx, to, data)
}

// SendEncoded performs a one-way exchange with an already-serialized
// envelope, skipping the redundant encode of the fan-out hot path. On
// success the bus takes full ownership of data (see EncodedSender): after
// the delivery completes — during which the handler sees an envelope
// aliasing it — the buffer is recycled into the wire buffer pool, so
// handlers that retain their request envelope must Clone it.
func (b *MemBus) SendEncoded(ctx context.Context, to string, data []byte) error {
	if _, err := b.lookup(to); err != nil {
		return AsFault(err) // ownership stays with the caller on error
	}
	b.qmu.Lock()
	b.queue = append(b.queue, pendingSend{to: to, data: data})
	if b.draining {
		b.qmu.Unlock()
		return nil
	}
	b.draining = true
	for b.head < len(b.queue) {
		p := b.queue[b.head]
		b.queue[b.head] = pendingSend{}
		b.head++
		b.qmu.Unlock()
		// Endpoints may unregister (crash injection) between enqueue and
		// delivery; drop silently like a network would.
		_, _ = b.deliverBytes(ctx, p.to, p.data)
		// The wave delivered (or dropped) this buffer exactly once and the
		// handler has returned; recycle it.
		putBytes(p.data)
		b.qmu.Lock()
	}
	b.queue = b.queue[:0]
	b.head = 0
	b.draining = false
	b.qmu.Unlock()
	return nil
}
