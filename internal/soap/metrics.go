package soap

import (
	"sync/atomic"

	"wsgossip/internal/metrics"
)

// Wire-path instrumentation. The decode ladder, the buffer pools, and the
// encode-once fan-out renderer are package-level machinery with no config
// object to thread a registry through, so the instrumentation point is
// process-global: InstallWireMetrics resolves every series once and
// publishes them behind one atomic pointer. Uninstrumented processes pay a
// single atomic load plus a nil check per event; instrumented ones add only
// the counters' atomic ops — no map lookups, no allocations — which keeps
// the decode and fan-out paths inside their alloc budgets.

// wireMetrics holds the pre-resolved series for the wire hot paths.
type wireMetrics struct {
	decodeScanner  *metrics.Counter // decode rung taken: hand-rolled scanner
	decodeZeroCopy *metrics.Counter // decode rung taken: encoding/xml slicer
	decodeLegacy   *metrics.Counter // decode rung taken: full legacy parse
	poolHit        *metrics.Counter // getBytes served from a pool
	poolMiss       *metrics.Counter // getBytes fell back to make
	bytesIn        *metrics.Counter // serialized bytes entering Decode
	bytesOut       *metrics.Counter // serialized bytes produced for sending
	envelopeSize   *metrics.BucketHistogram
	decodeOversize *metrics.Counter // Decode rejected: envelope over the size cap
	decodeBad      *metrics.Counter // Decode rejected: malformed on every rung
	rejectOversize *metrics.Counter // HTTP inbound rejected before decode: oversized
	rejectTruncate *metrics.Counter // HTTP inbound rejected before decode: truncated body
	rejectRead     *metrics.Counter // HTTP inbound rejected before decode: read error
}

var wireM atomic.Pointer[wireMetrics]

// InstallWireMetrics points the soap wire-path instrumentation at reg.
// The registration is process-global (the wire path is package-level
// machinery shared by every node in the process); simulated clusters that
// host many nodes in one process therefore see the sum over all of them.
// Passing nil uninstalls.
//
// Metric families: soap_decode_total{rung}, soap_pool_gets_total{result},
// soap_bytes_in_total, soap_bytes_out_total, soap_envelope_bytes.
func InstallWireMetrics(reg *metrics.Registry) {
	if reg == nil {
		wireM.Store(nil)
		return
	}
	rung := reg.CounterVec("soap_decode_total", "rung")
	pool := reg.CounterVec("soap_pool_gets_total", "result")
	decErr := reg.CounterVec("soap_decode_errors_total", "reason")
	reject := reg.CounterVec("soap_inbound_rejects_total", "reason")
	wireM.Store(&wireMetrics{
		decodeScanner:  rung.With("scanner"),
		decodeZeroCopy: rung.With("zerocopy"),
		decodeLegacy:   rung.With("legacy"),
		poolHit:        pool.With("hit"),
		poolMiss:       pool.With("miss"),
		bytesIn:        reg.Counter("soap_bytes_in_total"),
		bytesOut:       reg.Counter("soap_bytes_out_total"),
		envelopeSize:   reg.BucketHistogram("soap_envelope_bytes", metrics.DefSizeBuckets),
		decodeOversize: decErr.With("oversize"),
		decodeBad:      decErr.With("malformed"),
		rejectOversize: reject.With("oversize"),
		rejectTruncate: reject.With("truncated"),
		rejectRead:     reject.With("read"),
	})
}

// countDecode records one Decode: the rung that produced the envelope and
// the serialized size.
func countDecode(rung int, size int) {
	m := wireM.Load()
	if m == nil {
		return
	}
	switch rung {
	case rungScanner:
		m.decodeScanner.Inc()
	case rungZeroCopy:
		m.decodeZeroCopy.Inc()
	default:
		m.decodeLegacy.Inc()
	}
	m.bytesIn.Add(int64(size))
	m.envelopeSize.Observe(float64(size))
}

// Decode-rung identifiers for countDecode.
const (
	rungScanner = iota
	rungZeroCopy
	rungLegacy
)

// countPoolGet records one getBytes outcome.
func countPoolGet(hit bool) {
	m := wireM.Load()
	if m == nil {
		return
	}
	if hit {
		m.poolHit.Inc()
	} else {
		m.poolMiss.Inc()
	}
}

// countBytesOut records serialized bytes leaving the encode paths.
func countBytesOut(n int) {
	if m := wireM.Load(); m != nil {
		m.bytesOut.Add(int64(n))
	}
}

// countDecodeError records one rejected Decode input: oversize is the size
// cap, anything else is malformed bytes (a truncated or corrupt envelope).
func countDecodeError(oversize bool) {
	m := wireM.Load()
	if m == nil {
		return
	}
	if oversize {
		m.decodeOversize.Inc()
	} else {
		m.decodeBad.Inc()
	}
}

// Inbound-reject reasons for countInboundReject.
const (
	rejectOversize = iota
	rejectTruncated
	rejectRead
)

// countInboundReject records one inbound message the HTTP binding refused
// before decoding (misbehaving or byte-mangling sender).
func countInboundReject(reason int) {
	m := wireM.Load()
	if m == nil {
		return
	}
	switch reason {
	case rejectOversize:
		m.rejectOversize.Inc()
	case rejectTruncated:
		m.rejectTruncate.Inc()
	default:
		m.rejectRead.Inc()
	}
}
