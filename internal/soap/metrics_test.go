package soap

import (
	"strings"
	"testing"

	"wsgossip/internal/metrics"
)

func TestWireMetricsDecodeRungs(t *testing.T) {
	reg := metrics.NewRegistry()
	InstallWireMetrics(reg)
	defer InstallWireMetrics(nil)

	env := NewEnvelope()
	if err := env.SetBody(struct {
		XMLName struct{} `xml:"urn:test Ping"`
		N       int      `xml:"N"`
	}{N: 7}); err != nil {
		t.Fatal(err)
	}
	canonical, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(canonical); err != nil {
		t.Fatal(err)
	}
	rung := reg.CounterVec("soap_decode_total", "rung")
	if got := rung.With("scanner").Value(); got != 1 {
		t.Fatalf("scanner rung = %d, want 1 (snapshot:\n%s)", got, reg.Snapshot())
	}

	// A prefixed document must fall through to the legacy rung.
	prefixed := []byte(`<?xml version="1.0" encoding="UTF-8"?>` +
		`<s:Envelope xmlns:s="http://www.w3.org/2003/05/soap-envelope">` +
		`<s:Body><p:Ping xmlns:p="urn:test"><N>7</N></p:Ping></s:Body></s:Envelope>`)
	if _, err := Decode(prefixed); err != nil {
		t.Fatal(err)
	}
	if got := rung.With("legacy").Value(); got != 1 {
		t.Fatalf("legacy rung = %d, want 1", got)
	}

	if got := reg.Counter("soap_bytes_in_total").Value(); got != int64(len(canonical)+len(prefixed)) {
		t.Fatalf("bytes in = %d, want %d", got, len(canonical)+len(prefixed))
	}
	if got := reg.BucketHistogram("soap_envelope_bytes", nil).Count(); got != 2 {
		t.Fatalf("envelope size observations = %d, want 2", got)
	}
}

func TestWireMetricsBytesOutAndPool(t *testing.T) {
	reg := metrics.NewRegistry()
	InstallWireMetrics(reg)
	defer InstallWireMetrics(nil)

	env := NewEnvelope()
	// Big enough that the rendered buffer lands in a pooled size class
	// (>= 512 B) and can actually be recycled.
	if err := env.SetBody(struct {
		XMLName struct{} `xml:"urn:test Ping"`
		Pad     string   `xml:"Pad"`
	}{Pad: strings.Repeat("x", 2048)}); err != nil {
		t.Fatal(err)
	}
	tmpl, err := env.EncodeTemplate()
	if err != nil {
		t.Fatal(err)
	}
	out := tmpl.RenderTo("urn:peer-1")
	if got := reg.Counter("soap_bytes_out_total").Value(); got != int64(len(out)) {
		t.Fatalf("bytes out = %d, want %d", got, len(out))
	}
	putBytes(out)

	// A power-of-two size maps get and put onto the same class, so a
	// recycled buffer hits on the next get — except under the race
	// detector, where sync.Pool deliberately drops a random fraction of
	// puts and gets to flush out lifecycle bugs. Loop until a recycle
	// lands instead of asserting that the first one does.
	pool := reg.CounterVec("soap_pool_gets_total", "result")
	hitsBefore := pool.With("hit").Value()
	hit := false
	for attempt := 0; attempt < 100 && !hit; attempt++ {
		b := getBytes(1 << 12)
		putBytes(b[:0])
		hit = pool.With("hit").Value() > hitsBefore
	}
	if !hit {
		t.Fatalf("no pool hit in 100 put/get cycles (misses=%d)", pool.With("miss").Value())
	}
	// Every get was either a hit or a miss — no unrecorded outcomes.
	total := pool.With("hit").Value() + pool.With("miss").Value()
	if total == 0 {
		t.Fatal("no pool gets recorded at all")
	}
}

func TestWireMetricsUninstalledIsInert(t *testing.T) {
	InstallWireMetrics(nil)
	env := NewEnvelope()
	if err := env.SetBody(struct {
		XMLName struct{} `xml:"urn:test Ping"`
	}{}); err != nil {
		t.Fatal(err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err != nil {
		t.Fatal(err)
	}
}

func TestWireMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	InstallWireMetrics(reg)
	defer InstallWireMetrics(nil)
	env := NewEnvelope()
	if err := env.SetBody(struct {
		XMLName struct{} `xml:"urn:test Ping"`
	}{}); err != nil {
		t.Fatal(err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"soap_decode_total", "soap_bytes_in_total", "soap_envelope_bytes_bucket"} {
		if !strings.Contains(sb.String(), family) {
			t.Fatalf("exposition missing %s:\n%s", family, sb.String())
		}
	}
}
