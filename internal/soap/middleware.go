package soap

import (
	"context"
	"fmt"
	"log"
	"time"

	"wsgossip/internal/metrics"
)

// Middleware utilities for the handler chain. The WS-Gossip layer is one
// middleware among others in a node's stack; these are the supporting ones a
// production deployment composes around it.

// LoggingMiddleware logs every exchange: action, message ID, duration, and
// outcome. A nil logger uses the standard logger.
func LoggingMiddleware(logger *log.Logger) Middleware {
	if logger == nil {
		logger = log.Default()
	}
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req *Request) (*Envelope, error) {
			start := time.Now()
			resp, err := next.HandleSOAP(ctx, req)
			outcome := "ok"
			if err != nil {
				outcome = "error: " + err.Error()
			} else if resp == nil {
				outcome = "accepted"
			}
			a := req.Addressing()
			logger.Printf("soap %s msg=%s %v %s",
				a.Action, a.MessageID,
				time.Since(start).Round(time.Microsecond), outcome)
			return resp, err
		})
	}
}

// MetricsMiddleware counts exchanges and records latencies into the
// registry: soap_requests, soap_faults, and the soap_latency_ms histogram.
func MetricsMiddleware(reg *metrics.Registry) Middleware {
	requests := reg.Counter("soap_requests")
	faults := reg.Counter("soap_faults")
	latency := reg.Histogram("soap_latency_ms")
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req *Request) (*Envelope, error) {
			start := time.Now()
			resp, err := next.HandleSOAP(ctx, req)
			requests.Inc()
			if err != nil {
				faults.Inc()
			}
			latency.Observe(float64(time.Since(start).Microseconds()) / 1000)
			return resp, err
		})
	}
}

// RecoverMiddleware converts handler panics into Receiver faults so one
// broken service cannot take down the node's whole endpoint.
func RecoverMiddleware() Middleware {
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req *Request) (resp *Envelope, err error) {
			defer func() {
				if r := recover(); r != nil {
					resp = nil
					err = NewFault(CodeReceiver, fmt.Sprintf("handler panic: %v", r))
				}
			}()
			return next.HandleSOAP(ctx, req)
		})
	}
}

// RequireAddressing rejects requests whose mandatory WS-Addressing
// properties are missing, before they reach the application.
func RequireAddressing() Middleware {
	return func(next Handler) Handler {
		return HandlerFunc(func(ctx context.Context, req *Request) (*Envelope, error) {
			if err := req.Addressing().Validate(); err != nil {
				return nil, NewFault(CodeSender, err.Error())
			}
			return next.HandleSOAP(ctx, req)
		})
	}
}
