package soap

import (
	"bytes"
	"context"
	"errors"
	"log"
	"strings"
	"testing"

	"wsgossip/internal/metrics"
	"wsgossip/internal/wsa"
)

func TestLoggingMiddleware(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := Chain(echoHandler(), LoggingMiddleware(logger))
	req := reqWithAction(t, "urn:logme")
	if _, err := h.HandleSOAP(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "urn:logme") {
		t.Fatalf("log output %q lacks the action", out)
	}
}

func TestLoggingMiddlewareError(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	failing := HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		return nil, NewFault(CodeReceiver, "down")
	})
	h := Chain(failing, LoggingMiddleware(logger))
	if _, err := h.HandleSOAP(context.Background(), reqWithAction(t, "urn:x")); err == nil {
		t.Fatal("error swallowed")
	}
	if !strings.Contains(buf.String(), "error") {
		t.Fatalf("log output %q lacks the error", buf.String())
	}
}

func TestMetricsMiddleware(t *testing.T) {
	reg := metrics.NewRegistry()
	okHandler := HandlerFunc(func(context.Context, *Request) (*Envelope, error) { return nil, nil })
	h := Chain(okHandler, MetricsMiddleware(reg))
	for i := 0; i < 3; i++ {
		if _, err := h.HandleSOAP(context.Background(), reqWithAction(t, "urn:x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("soap_requests").Value(); got != 3 {
		t.Fatalf("requests = %d", got)
	}
	if got := reg.Counter("soap_faults").Value(); got != 0 {
		t.Fatalf("faults = %d", got)
	}
	if got := reg.Histogram("soap_latency_ms").Count(); got != 3 {
		t.Fatalf("latency samples = %d", got)
	}
	failing := Chain(HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		return nil, errors.New("x")
	}), MetricsMiddleware(reg))
	_, _ = failing.HandleSOAP(context.Background(), reqWithAction(t, "urn:x"))
	if got := reg.Counter("soap_faults").Value(); got != 1 {
		t.Fatalf("faults = %d", got)
	}
}

func TestRecoverMiddleware(t *testing.T) {
	panicking := HandlerFunc(func(context.Context, *Request) (*Envelope, error) {
		panic("boom")
	})
	h := Chain(panicking, RecoverMiddleware())
	_, err := h.HandleSOAP(context.Background(), reqWithAction(t, "urn:x"))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
	if !strings.Contains(f.Reason.Text, "boom") {
		t.Fatalf("fault reason = %q", f.Reason.Text)
	}
}

func TestRequireAddressing(t *testing.T) {
	okHandler := HandlerFunc(func(context.Context, *Request) (*Envelope, error) { return nil, nil })
	h := Chain(okHandler, RequireAddressing())
	// Valid request passes.
	if _, err := h.HandleSOAP(context.Background(), reqWithAction(t, "urn:x")); err != nil {
		t.Fatal(err)
	}
	// Missing action rejected.
	env := NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{To: "mem://svc"}); err != nil {
		t.Fatal(err)
	}
	bad := &Request{Envelope: env}
	_, err := h.HandleSOAP(context.Background(), bad)
	var f *Fault
	if !errors.As(err, &f) || f.Code.Value != CodeSender {
		t.Fatalf("err = %v, want sender fault", err)
	}
}
