package soap

import (
	"math/bits"
	"sync"
)

// Size-classed byte-buffer pool for the wire path. Rendered fan-out
// messages (RenderTo) and transport receive buffers (the MemBus delivery
// queue, the HTTP server's request reader) draw from and return to these
// pools, so a steady-state gossip wave stops allocating per message.
//
// Ownership discipline: a buffer may be recycled only by the party that
// provably holds the last reference. SendEncoded hands ownership to the
// binding, and a handler must not retain its request envelope (or any
// Block.Raw slice of it) past HandleSOAP returning — retention requires
// Envelope.Clone. Under that contract MemBus recycles each one-way
// delivery buffer exactly once, after the handler returns, and the HTTP
// server recycles its request-read buffer once the response is encoded.
// HTTPClient.SendEncoded deliberately does NOT recycle the buffers it is
// handed: net/http's transport can still be draining the request-body
// reader when Do returns (early server responses, redirect GetBody
// re-reads), so the last reference is not provably released — those
// buffers are left to the GC, which the network-bound path can afford.

const (
	minBufBits = 9  // smallest pooled class: 512 B
	maxBufBits = 20 // largest pooled class: 1 MiB
)

var bytePools [maxBufBits - minBufBits + 1]sync.Pool

// getBytes returns a zero-length buffer with capacity at least n.
func getBytes(n int) []byte {
	c := bits.Len(uint(n - 1)) // ceil(log2 n); n<=1 yields 0
	if c < minBufBits {
		c = minBufBits
	}
	if c > maxBufBits {
		countPoolGet(false)
		return make([]byte, 0, n)
	}
	if v := bytePools[c-minBufBits].Get(); v != nil {
		countPoolGet(true)
		return (*(v.(*[]byte)))[:0]
	}
	countPoolGet(false)
	return make([]byte, 0, n)
}

// putBytes recycles a buffer. Callers must hold the only live reference;
// see the ownership discipline above. Off-class capacities are dropped.
func putBytes(b []byte) {
	c := bits.Len(uint(cap(b))) - 1 // floor(log2 cap)
	if c < minBufBits || c > maxBufBits {
		return
	}
	b = b[:0]
	bytePools[c-minBufBits].Put(&b)
}
