//go:build !race

package soap

const raceEnabled = false
