package soap

import (
	"bytes"
	"encoding/xml"
	"unicode/utf8"

	"wsgossip/internal/wsa"
)

// Hand-rolled wire scanner.
//
// decodeScan is the first rung of the Decode ladder: a direct []byte walk
// over the canonical wire format — the prefix-free documents the splice
// serializer emits, where every header/body block carries its own default
// xmlns declaration — plus the benign variation real peers produce
// (whitespace, comments, processing instructions, CDATA, character
// references, attributes with quoted '>' and '/>'). It matches the fixed
// Envelope/Header/Body scaffolding and slices each child block verbatim,
// tracking element nesting with a name stack, without ever running the
// encoding/xml tokenizer.
//
// Correctness is preserved by construction: every deviation from the
// grammar below returns ok=false and Decode falls back to the existing
// encoding/xml zero-copy path, so the scanner can only make canonical
// documents cheaper — it can never change what Decode accepts or produces.
// Where the scanner does accept, it must agree with the fallback exactly;
// that equivalence is pinned by TestScannerMatchesZeroCopy and fuzzed by
// FuzzDecodeEquivalence.
//
// Rejected to the fallback (not exhaustive): namespace prefixes (':' in any
// element or attribute name, which also covers every "xmlns:" declaration),
// DOCTYPE and other <!…> directives, blocks without their own default xmlns
// declaration (they would inherit the envelope namespace and stop being
// self-contained), entity references where the scanner would have to
// resolve them structurally (inside an xmlns value), duplicate xmlns
// attributes on one tag, non-whitespace text between scaffolding elements,
// non-UTF-8 encoding declarations, xml-declaration PIs outside the prolog
// (the legacy path cannot re-encode them), and nesting deeper than the
// fixed name stack. Inside accepted regions the scanner enforces exactly
// what encoding/xml enforces: valid UTF-8, XML character range, the five
// named entities plus in-range numeric references, quoted attribute values
// with no raw '<', no literal "]]>" in character data, matching end tags,
// and '--'-free comments.

const maxScanDepth = 24 // nested elements per block; deeper falls back

var (
	envelopeLocal = []byte("Envelope")
	headerLocal   = []byte("Header")
	bodyLocal     = []byte("Body")
	envelopeNS    = []byte(Namespace)

	soapHeaderName = xml.Name{Space: Namespace, Local: "Header"}
	soapBodyName   = xml.Name{Space: Namespace, Local: "Body"}

	piOpen        = []byte("<?")
	piClose       = []byte("?>")
	commentOpen   = []byte("<!--")
	commentDashes = []byte("--")
	cdataOpen     = []byte("<![CDATA[")
	cdataClose    = []byte("]]>")
)

// Namespace URIs of the neighbouring protocol layers, kept here purely as
// string-interning hints for the scanner (values, not dependencies): blocks
// in these namespaces dominate gossip traffic.
const (
	nsWSGossip = "urn:wsgossip:2008"
	nsWSCoord  = "http://docs.oasis-open.org/ws-tx/wscoor/2006/06"
)

// decodeScan parses data with a direct byte walk. ok=false means the
// document strays from the canonical grammar and the caller must fall back;
// it never implies the document is malformed.
func decodeScan(data []byte) (*Envelope, bool) {
	s := wireScanner{data: data}
	if !s.prolog() {
		return nil, false
	}
	root, ok := s.startTag()
	if !ok || !bytes.Equal(s.name(root), envelopeLocal) ||
		!root.hasXMLNS || !bytes.Equal(s.slice(root.nsStart, root.nsEnd), envelopeNS) {
		return nil, false
	}
	env := &Envelope{XMLName: soapEnvelopeName}
	if root.selfClose {
		return env, true
	}
	for {
		s.ws()
		if s.pos >= len(s.data) || s.data[s.pos] != '<' {
			// EOF inside the envelope, or loose text between scaffolding
			// elements (which could carry entities to validate): fall back.
			return nil, false
		}
		switch {
		case s.lookingAt(commentOpen):
			if !s.comment() {
				return nil, false
			}
		case s.lookingAt(piOpen):
			if !s.pi(false) {
				return nil, false
			}
		case s.pos+1 < len(s.data) && s.data[s.pos+1] == '/':
			name, ok := s.endTag()
			if !ok || !bytes.Equal(name, envelopeLocal) {
				return nil, false
			}
			// Like the encoding/xml walk, anything after </Envelope> is
			// never read.
			return env, true
		case s.pos+1 < len(s.data) && s.data[s.pos+1] == '!':
			return nil, false // DOCTYPE or other directive
		default:
			tag, ok := s.startTag()
			if !ok {
				return nil, false
			}
			name := s.name(tag)
			// Header/Body inherit the envelope default namespace unless the
			// tag redeclares it; only the SOAP-namespace containers are
			// captured, everything else is skipped like Decoder.Skip would.
			soapScope := !tag.hasXMLNS || bytes.Equal(s.slice(tag.nsStart, tag.nsEnd), envelopeNS)
			switch {
			case soapScope && bytes.Equal(name, headerLocal):
				if env.Header == nil {
					env.Header = &Header{XMLName: soapHeaderName}
				}
				if !tag.selfClose && !s.container(headerLocal, &env.Header.Blocks) {
					return nil, false
				}
			case soapScope && bytes.Equal(name, bodyLocal):
				env.Body.XMLName = soapBodyName
				if !tag.selfClose && !s.container(bodyLocal, &env.Body.Blocks) {
					return nil, false
				}
			default:
				if !tag.selfClose && !s.subtree(name) {
					return nil, false
				}
			}
		}
	}
}

// wireScanner is a cursor over one document. All methods advance pos past
// what they consumed and report false on anything non-canonical.
type wireScanner struct {
	data []byte
	pos  int
}

func (s *wireScanner) slice(i, j int) []byte   { return s.data[i:j] }
func (s *wireScanner) name(t startTag) []byte  { return s.data[t.nameStart:t.nameEnd] }
func (s *wireScanner) lookingAt(p []byte) bool { return bytes.HasPrefix(s.data[s.pos:], p) }

func (s *wireScanner) ws() {
	for s.pos < len(s.data) && isXMLSpace(s.data[s.pos]) {
		s.pos++
	}
}

// prolog consumes everything before the root start tag: whitespace,
// comments, and processing instructions (checking any xml declaration for a
// UTF-8 encoding). It leaves pos at the root '<'.
func (s *wireScanner) prolog() bool {
	for {
		s.ws()
		if s.pos >= len(s.data) || s.data[s.pos] != '<' {
			return false
		}
		switch {
		case s.lookingAt(commentOpen):
			if !s.comment() {
				return false
			}
		case s.lookingAt(piOpen):
			if !s.pi(true) {
				return false
			}
		default:
			if s.pos+1 < len(s.data) && (s.data[s.pos+1] == '!' || s.data[s.pos+1] == '/') {
				return false
			}
			return true
		}
	}
}

// container captures every child element of a Header or Body whose open tag
// was just consumed, through the matching end tag. Each captured block is a
// verbatim slice spanning the child's start tag through its end tag.
func (s *wireScanner) container(local []byte, out *[]Block) bool {
	for {
		s.ws()
		if s.pos >= len(s.data) || s.data[s.pos] != '<' {
			return false
		}
		switch {
		case s.lookingAt(commentOpen):
			if !s.comment() {
				return false
			}
		case s.lookingAt(piOpen):
			if !s.pi(false) {
				return false
			}
		case s.pos+1 < len(s.data) && s.data[s.pos+1] == '/':
			name, ok := s.endTag()
			return ok && bytes.Equal(name, local)
		case s.pos+1 < len(s.data) && s.data[s.pos+1] == '!':
			return false
		default:
			start := s.pos
			tag, ok := s.startTag()
			if !ok {
				return false
			}
			if !tag.hasXMLNS {
				// The block would inherit the envelope's default namespace
				// and its verbatim slice would not be self-contained —
				// exactly the errNotSelfContained case of the fallback.
				return false
			}
			if !tag.selfClose && !s.subtree(s.name(tag)) {
				return false
			}
			space, ok := nsValue(s.slice(tag.nsStart, tag.nsEnd))
			if !ok {
				return false
			}
			if *out == nil {
				*out = make([]Block, 0, 8)
			}
			*out = append(*out, Block{
				XMLName: xml.Name{Space: space, Local: internLocal(s.name(tag))},
				Raw:     s.data[start:s.pos],
			})
		}
	}
}

// subtree validates the content of an element whose start tag was just
// consumed, through its matching end tag: nested elements (end tags must
// match by name), text with entity references, CDATA, comments, and PIs.
func (s *wireScanner) subtree(root []byte) bool {
	var stackArr [maxScanDepth][]byte
	stack := append(stackArr[:0], root)
	for len(stack) > 0 {
		if !s.text() {
			return false
		}
		switch {
		case s.lookingAt(commentOpen):
			if !s.comment() {
				return false
			}
		case s.lookingAt(cdataOpen):
			if !s.cdata() {
				return false
			}
		case s.lookingAt(piOpen):
			if !s.pi(false) {
				return false
			}
		case s.pos+1 < len(s.data) && s.data[s.pos+1] == '/':
			name, ok := s.endTag()
			if !ok || !bytes.Equal(name, stack[len(stack)-1]) {
				return false
			}
			stack = stack[:len(stack)-1]
		case s.pos+1 < len(s.data) && s.data[s.pos+1] == '!':
			return false
		default:
			tag, ok := s.startTag()
			if !ok {
				return false
			}
			if !tag.selfClose {
				if len(stack) == maxScanDepth {
					return false
				}
				stack = append(stack, s.name(tag))
			}
		}
	}
	return true
}

// text consumes character data up to the next '<', validating characters
// and entity references exactly as strictly as encoding/xml does —
// including the ban on a literal "]]>" outside a CDATA section.
func (s *wireScanner) text() bool {
	data := s.data
	i := s.pos
	for i < len(data) {
		c := data[i]
		if c == '<' {
			s.pos = i
			return true
		}
		if c == '&' {
			n, _ := entityLen(data[i:])
			if n < 0 {
				return false
			}
			i += n
			continue
		}
		if c == ']' && i+2 < len(data) && data[i+1] == ']' && data[i+2] == '>' {
			return false
		}
		if c >= 0x20 && c < 0x80 {
			i++
			continue
		}
		if c == '\t' || c == '\n' || c == '\r' {
			i++
			continue
		}
		if c < 0x20 {
			return false
		}
		r, size := utf8.DecodeRune(data[i:])
		if (r == utf8.RuneError && size == 1) || r == 0xFFFE || r == 0xFFFF {
			return false
		}
		i += size
	}
	return false // EOF inside an element
}

// startTag parses a start tag at pos ('<'). Element and attribute names are
// restricted to a prefix-free ASCII subset of XML names; attribute values
// may contain quoted '>' and '/>' and validated entity references.
type startTag struct {
	nameStart, nameEnd int
	nsStart, nsEnd     int // value span of the default xmlns attribute
	hasXMLNS           bool
	selfClose          bool
}

func (s *wireScanner) startTag() (startTag, bool) {
	var t startTag
	data := s.data
	i := s.pos + 1
	t.nameStart = i
	i = scanName(data, i)
	if i < 0 {
		return t, false
	}
	t.nameEnd = i
	for {
		sawSpace := false
		for i < len(data) && isXMLSpace(data[i]) {
			i++
			sawSpace = true
		}
		if i >= len(data) {
			return t, false
		}
		switch data[i] {
		case '>':
			s.pos = i + 1
			return t, true
		case '/':
			if i+1 >= len(data) || data[i+1] != '>' {
				return t, false
			}
			t.selfClose = true
			s.pos = i + 2
			return t, true
		}
		if !sawSpace {
			return t, false
		}
		aStart := i
		i = scanName(data, i)
		if i < 0 {
			return t, false
		}
		aEnd := i
		for i < len(data) && isXMLSpace(data[i]) {
			i++
		}
		if i >= len(data) || data[i] != '=' {
			return t, false
		}
		i++
		for i < len(data) && isXMLSpace(data[i]) {
			i++
		}
		if i >= len(data) || (data[i] != '"' && data[i] != '\'') {
			return t, false
		}
		quote := data[i]
		i++
		vStart := i
		i = scanAttrValue(data, i, quote)
		if i < 0 {
			return t, false
		}
		vEnd := i
		i++ // closing quote
		if string(data[aStart:aEnd]) == "xmlns" {
			if t.hasXMLNS {
				return t, false // duplicate declaration: ambiguous, fall back
			}
			t.hasXMLNS = true
			t.nsStart, t.nsEnd = vStart, vEnd
		}
	}
}

// endTag parses an end tag at pos ("</") and returns the name.
func (s *wireScanner) endTag() ([]byte, bool) {
	data := s.data
	start := s.pos + 2
	i := scanName(data, start)
	if i < 0 {
		return nil, false
	}
	end := i
	for i < len(data) && isXMLSpace(data[i]) {
		i++
	}
	if i >= len(data) || data[i] != '>' {
		return nil, false
	}
	s.pos = i + 1
	return data[start:end], true
}

// comment consumes "<!-- … -->" at pos. Like encoding/xml, "--" may appear
// only as part of the terminator.
func (s *wireScanner) comment() bool {
	i := s.pos + len(commentOpen)
	rel := bytes.Index(s.data[i:], commentDashes)
	if rel < 0 || i+rel+2 >= len(s.data) || s.data[i+rel+2] != '>' {
		return false
	}
	if !validRawChars(s.data[i : i+rel]) {
		return false
	}
	s.pos = i + rel + 3
	return true
}

// cdata consumes "<![CDATA[ … ]]>" at pos, validating characters.
func (s *wireScanner) cdata() bool {
	i := s.pos + len(cdataOpen)
	rel := bytes.Index(s.data[i:], cdataClose)
	if rel < 0 || !validRawChars(s.data[i:i+rel]) {
		return false
	}
	s.pos = i + rel + len(cdataClose)
	return true
}

// pi consumes "<? … ?>" at pos. Outside the prolog any xml declaration
// makes the scanner decline: a block containing one would fail the legacy
// path's token re-encode, so only the fallback ladder may judge it. In the
// prolog (allowXMLDecl) it must not declare a non-UTF-8 encoding
// (encoding/xml would demand a CharsetReader).
func (s *wireScanner) pi(allowXMLDecl bool) bool {
	i := s.pos + len(piOpen)
	rel := bytes.Index(s.data[i:], piClose)
	if rel < 0 {
		return false
	}
	body := s.data[i : i+rel]
	// encoding/xml demands a target name right after "<?".
	if scanName(body, 0) <= 0 {
		return false
	}
	if !validRawChars(body) {
		return false
	}
	if isXMLDecl(body) && (!allowXMLDecl || !utf8Declared(body)) {
		return false
	}
	s.pos = i + rel + len(piClose)
	return true
}

// isXMLDecl reports whether a PI body is an xml declaration ("xml" target).
func isXMLDecl(body []byte) bool {
	if len(body) < 3 {
		return false
	}
	if (body[0]|0x20) != 'x' || (body[1]|0x20) != 'm' || (body[2]|0x20) != 'l' {
		return false
	}
	return len(body) == 3 || isXMLSpace(body[3])
}

// utf8Declared reports whether an xml declaration either omits the encoding
// pseudo-attribute or declares a UTF-8 variant.
func utf8Declared(body []byte) bool {
	i := bytes.Index(body, []byte("encoding"))
	if i < 0 {
		return true
	}
	i += len("encoding")
	for i < len(body) && isXMLSpace(body[i]) {
		i++
	}
	if i >= len(body) || body[i] != '=' {
		return false
	}
	i++
	for i < len(body) && isXMLSpace(body[i]) {
		i++
	}
	if i >= len(body) || (body[i] != '"' && body[i] != '\'') {
		return false
	}
	quote := body[i]
	i++
	end := bytes.IndexByte(body[i:], quote)
	if end < 0 {
		return false
	}
	val := body[i : i+end]
	return len(val) == 5 &&
		(val[0]|0x20) == 'u' && (val[1]|0x20) == 't' && (val[2]|0x20) == 'f' &&
		val[3] == '-' && val[4] == '8'
}

// scanName consumes an element or attribute name: a prefix-free ASCII
// subset of XML names ([A-Za-z_] then [A-Za-z0-9._-]). Names outside the
// subset — prefixed, non-ASCII — make the scanner fall back; the subset is
// strictly narrower than what encoding/xml accepts, never wider.
func scanName(data []byte, i int) int {
	if i >= len(data) {
		return -1
	}
	c := data[i]
	if !(c == '_' || c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z') {
		return -1
	}
	i++
	for i < len(data) {
		c = data[i]
		if c == '_' || c == '.' || c == '-' ||
			c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' {
			i++
			continue
		}
		break
	}
	return i
}

// scanAttrValue consumes a quoted attribute value and returns the index of
// the closing quote. Raw '<' is rejected (as encoding/xml does); '>' and
// "/>" are fine inside quotes; entities and characters are validated.
func scanAttrValue(data []byte, i int, quote byte) int {
	for i < len(data) {
		c := data[i]
		if c == quote {
			return i
		}
		switch {
		case c == '<':
			return -1
		case c == '&':
			n, _ := entityLen(data[i:])
			if n < 0 {
				return -1
			}
			i += n
		case c >= 0x20 && c < 0x80, c == '\t', c == '\n', c == '\r':
			i++
		case c < 0x20:
			return -1
		default:
			r, size := utf8.DecodeRune(data[i:])
			if (r == utf8.RuneError && size == 1) || r == 0xFFFE || r == 0xFFFF {
				return -1
			}
			i += size
		}
	}
	return -1
}

// entityLen validates the entity reference at the start of b (b[0] == '&')
// and returns its byte length plus the referenced rune, or n=-1 when it is
// not one of the five predefined named entities or an in-range numeric
// character reference — the exact set encoding/xml accepts in strict mode.
func entityLen(b []byte) (n int, r rune) {
	limit := len(b)
	if limit > 12 { // longest accepted: &#x10FFFF; plus slack
		limit = 12
	}
	semi := bytes.IndexByte(b[1:limit], ';')
	if semi < 0 {
		return -1, 0
	}
	body := b[1 : 1+semi]
	if len(body) == 0 {
		return -1, 0
	}
	if body[0] == '#' {
		num := body[1:]
		base := rune(10)
		if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		if len(num) == 0 {
			return -1, 0
		}
		for _, c := range num {
			var d rune
			switch {
			case c >= '0' && c <= '9':
				d = rune(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = rune(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = rune(c-'A') + 10
			default:
				return -1, 0
			}
			r = r*base + d
			if r > 0x10FFFF {
				return -1, 0
			}
		}
		if !xmlCharOK(r) {
			return -1, 0
		}
		return semi + 2, r
	}
	switch string(body) {
	case "amp":
		return semi + 2, '&'
	case "lt":
		return semi + 2, '<'
	case "gt":
		return semi + 2, '>'
	case "apos":
		return semi + 2, '\''
	case "quot":
		return semi + 2, '"'
	}
	return -1, 0
}

// xmlCharOK mirrors encoding/xml's character range check.
func xmlCharOK(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// validRawChars validates a region that takes no entity processing
// (comments, PIs, CDATA) against the XML character range.
func validRawChars(seg []byte) bool {
	for i := 0; i < len(seg); {
		c := seg[i]
		if c >= 0x20 && c < 0x80 || c == '\t' || c == '\n' || c == '\r' {
			i++
			continue
		}
		if c < 0x20 {
			return false
		}
		r, size := utf8.DecodeRune(seg[i:])
		if (r == utf8.RuneError && size == 1) || r == 0xFFFE || r == 0xFFFF {
			return false
		}
		i += size
	}
	return true
}

// nsValue converts a scanned xmlns attribute value into a namespace string.
// Values needing entity expansion or newline normalization fall back.
func nsValue(b []byte) (string, bool) {
	if bytes.IndexByte(b, '&') >= 0 || bytes.IndexByte(b, '\r') >= 0 {
		return "", false
	}
	return internSpace(b), true
}

// internLocal returns the canonical string for frequent wire-format element
// names without allocating (switch on a string conversion compiles to an
// allocation-free comparison); unknown names are copied.
func internLocal(b []byte) string {
	switch string(b) {
	case "To":
		return "To"
	case "Action":
		return "Action"
	case "MessageID":
		return "MessageID"
	case "RelatesTo":
		return "RelatesTo"
	case "ReplyTo":
		return "ReplyTo"
	case "From":
		return "From"
	case "Gossip":
		return "Gossip"
	case "CoordinationContext":
		return "CoordinationContext"
	case "Digest":
		return "Digest"
	case "Announce":
		return "Announce"
	case "Fetch":
		return "Fetch"
	case "PullRequest":
		return "PullRequest"
	case "AggregateStart":
		return "AggregateStart"
	case "AggregateShare":
		return "AggregateShare"
	case "AggregateQuery":
		return "AggregateQuery"
	case "AggregateQueryResult":
		return "AggregateQueryResult"
	case "Fault":
		return "Fault"
	}
	return string(b)
}

// internSpace is internLocal for the namespace URIs of the protocol stack.
func internSpace(b []byte) string {
	switch string(b) {
	case "":
		return ""
	case Namespace:
		return Namespace
	case wsa.Namespace:
		return wsa.Namespace
	case nsWSGossip:
		return nsWSGossip
	case nsWSCoord:
		return nsWSCoord
	}
	return string(b)
}
