package soap

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"wsgossip/internal/wsa"
)

// Tests for the hand-rolled wire scanner. The load-bearing property:
// scanner-accepted ⇒ byte-identical blocks versus the encoding/xml
// zero-copy path (scannerAgrees), checked over a hand-built corpus, over
// generated envelopes, and under fuzzing (FuzzDecodeEquivalence).

// scannerAgrees asserts that decodeScan accepted doc and produced exactly
// what decodeZeroCopy produces: same header/body structure, byte-identical
// verbatim block slices, same names, same addressing.
func scannerAgrees(t *testing.T, label string, doc []byte) *Envelope {
	t.Helper()
	got, ok := decodeScan(doc)
	if !ok {
		t.Fatalf("%s: scanner rejected canonical document:\n%s", label, doc)
	}
	want, err := decodeZeroCopy(doc)
	if err != nil {
		t.Fatalf("%s: scanner accepted what the zero-copy path rejects (%v):\n%s", label, err, doc)
	}
	if (got.Header == nil) != (want.Header == nil) {
		t.Fatalf("%s: header presence %v != %v", label, got.Header != nil, want.Header != nil)
	}
	compare := func(kind string, g, w []Block) {
		if len(g) != len(w) {
			t.Fatalf("%s: %s block count %d != %d", label, kind, len(g), len(w))
		}
		for i := range g {
			if g[i].XMLName != w[i].XMLName {
				t.Fatalf("%s: %s block %d name %v != %v", label, kind, i, g[i].XMLName, w[i].XMLName)
			}
			if !bytes.Equal(g[i].Raw, w[i].Raw) {
				t.Fatalf("%s: %s block %d bytes differ:\n%s\nvs\n%s", label, kind, i, g[i].Raw, w[i].Raw)
			}
			// Verbatim means aliasing the input, not a copy that happens to
			// match.
			if len(g[i].Raw) > 0 && &g[i].Raw[0] != &w[i].Raw[0] {
				t.Fatalf("%s: %s block %d is not a slice of the input", label, kind, i)
			}
		}
	}
	if got.Header != nil {
		compare("header", got.Header.Blocks, want.Header.Blocks)
	}
	compare("body", got.Body.Blocks, want.Body.Blocks)
	if !reflect.DeepEqual(got.Addressing(), want.Addressing()) {
		t.Fatalf("%s: addressing %+v != %+v", label, got.Addressing(), want.Addressing())
	}
	return got
}

// scannerAdversarialDocs are canonical documents engineered against the
// scanner's weak spots: comments/CDATA/PIs inside blocks, attribute values
// containing '>' and '/>', nested same-name elements, entity references,
// and UTF-8 multibyte sequences hugging tag boundaries.
func scannerAdversarialDocs() map[string]string {
	soapNS := Namespace
	return map[string]string{
		"comment-inside-block": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<I xmlns="urn:i"><!-- <fake> tags &amp; entities --><V>x</V></I></Body></Envelope>`,
		"cdata-inside-block": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<I xmlns="urn:i"><V><![CDATA[</V> raw & <markup> ]]></V></I></Body></Envelope>`,
		"pi-inside-block": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<I xmlns="urn:i"><?p data with > and </I> inside?><V>x</V></I></Body></Envelope>`,
		"attr-gt": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<I xmlns="urn:i" a="x>y" b='p>q'><V>v</V></I></Body></Envelope>`,
		"attr-selfclose-lookalike": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<I xmlns="urn:i" a="x/>y"><V>v</V></I></Body></Envelope>`,
		"nested-same-name": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<I xmlns="urn:i"><I><I>deep</I></I><I/></I></Body></Envelope>`,
		"same-name-as-container": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<Body xmlns="urn:i"><Body>x</Body></Body></Body></Envelope>`,
		"entities-everywhere": `<Envelope xmlns="` + soapNS + `"><Header>` +
			`<To xmlns="` + wsa.Namespace + `">mem://a&amp;b&lt;c&gt;&quot;d&quot;&apos;</To></Header>` +
			`<Body><I xmlns="urn:i" a="&#65;&#x42;"><V>&#x1F600;</V></I></Body></Envelope>`,
		"multibyte-at-boundaries": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<I xmlns="urn:i">日本語<V>ünïcødé✓</V>末尾</I></Body></Envelope>`,
		"multibyte-attr-boundary": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<I xmlns="urn:i" a="日本語"><V>✓</V></I></Body></Envelope>`,
		"whitespace-shapes": "<Envelope xmlns=\"" + soapNS + "\">\r\n  <Header >\n" +
			"    <Meta xmlns = 'urn:m'\ta = \"1\" >m</Meta >\n  </Header>\n" +
			"  <Body><I xmlns=\"urn:i\"/></Body>\n</Envelope>\ntrailing junk ignored",
		"empty-containers": `<Envelope xmlns="` + soapNS + `"><Header/><Body/></Envelope>`,
		"empty-ns-block":   `<Envelope xmlns="` + soapNS + `"><Body><Plain xmlns="">t</Plain></Body></Envelope>`,
		"prolog-variety": `<?xml version="1.0" encoding="utf-8"?><!-- head --><?keep going?>` + "\n" +
			`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i">x</I></Body></Envelope>`,
		"comment-between-blocks": `<Envelope xmlns="` + soapNS + `"><Header><!-- a -->` +
			`<To xmlns="` + wsa.Namespace + `">mem://x</To><!-- b --></Header>` +
			`<Body><!-- c --><I xmlns="urn:i"/></Body></Envelope>`,
		"unknown-envelope-child": `<Envelope xmlns="` + soapNS + `"><Ignored xmlns="urn:x"><Sub>s</Sub></Ignored>` +
			`<Body><I xmlns="urn:i">x</I></Body></Envelope>`,
	}
}

// TestScannerMatchesZeroCopy: the scanner-accepted ⇒ byte-identical-blocks
// property over the adversarial corpus.
func TestScannerMatchesZeroCopy(t *testing.T) {
	for name, doc := range scannerAdversarialDocs() {
		t.Run(name, func(t *testing.T) {
			env := scannerAgrees(t, name, []byte(doc))
			// The captured envelope must survive a full wire cycle.
			data, err := env.Encode()
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if _, err := Decode(data); err != nil {
				t.Fatalf("re-decode: %v\n%s", err, data)
			}
		})
	}
}

// TestScannerMatchesZeroCopyQuick extends the property to generated
// envelopes: everything the splice serializer emits must take the scanner
// path and agree with the zero-copy path byte for byte.
func TestScannerMatchesZeroCopyQuick(t *testing.T) {
	f := func(value, tag string, n int) bool {
		if !validXMLString(value) || !validXMLString(tag) {
			return true
		}
		env := buildWireEnvelope(t, value)
		if err := env.AddHeader(wireHeader{Tag: tag, Body: value}); err != nil {
			return false
		}
		data, err := env.Encode()
		if err != nil {
			return false
		}
		scannerAgrees(t, fmt.Sprintf("quick %d", n), data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestScannerRejects: non-canonical documents must be declined (never
// mis-captured) and still decode correctly through the fallback ladder.
func TestScannerRejects(t *testing.T) {
	soapNS := Namespace
	docs := map[string]string{
		"prefixed": `<env:Envelope xmlns:env="` + soapNS + `">` +
			`<env:Body><a:B xmlns:a="urn:a">x</a:B></env:Body></env:Envelope>`,
		"doctype": `<!DOCTYPE Envelope><Envelope xmlns="` + soapNS + `"><Body/></Envelope>`,
		"inherited-default-ns": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<Fault><Code><Value>soapenv</Value></Code></Fault></Body></Envelope>`,
		"entity-in-xmlns": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<I xmlns="urn:a&amp;b">x</I></Body></Envelope>`,
		"duplicate-xmlns": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<I xmlns="urn:i" xmlns="urn:i">x</I></Body></Envelope>`,
		"non-utf8-encoding-decl": `<?xml version="1.0" encoding="ISO-8859-1"?>` +
			`<Envelope xmlns="` + soapNS + `"><Body/></Envelope>`,
		"text-in-envelope": `<Envelope xmlns="` + soapNS + `">stray<Body/></Envelope>`,
		"wrong-root-ns":    `<Envelope xmlns="urn:not-soap"><Body/></Envelope>`,
		"directive-in-body": `<Envelope xmlns="` + soapNS + `"><Body>` +
			`<!ENTITY x><I xmlns="urn:i"/></Body></Envelope>`,
	}
	for name, doc := range docs {
		t.Run(name, func(t *testing.T) {
			if _, ok := decodeScan([]byte(doc)); ok {
				t.Fatalf("scanner accepted non-canonical document:\n%s", doc)
			}
			// The full ladder must still treat the document exactly as the
			// legacy path does (or reject it on both paths).
			got, gotErr := Decode([]byte(doc))
			want, wantErr := decodeLegacy([]byte(doc))
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("Decode err=%v, legacy err=%v", gotErr, wantErr)
			}
			if gotErr == nil {
				equivalent(t, name, got, want)
			}
		})
	}
}

// TestScannerMalformed: malformed documents never panic the scanner and are
// never accepted. (The fallback decides the final verdict.)
func TestScannerMalformed(t *testing.T) {
	soapNS := Namespace
	docs := []string{
		"",
		"<",
		"<Envelope",
		`<Envelope xmlns="` + soapNS + `">`,
		`<Envelope xmlns="` + soapNS + `"><Body>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i"></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i"><J></I></J></I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i">&bogus;</I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i">&#x110000;</I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i" a="un'terminated></I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i" a=bare></I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i"><!-- -- --></I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i" a="x<y"/></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i">` + "\x01" + `</I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i">` + "\xff\xfe" + `</I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i"><![CDATA[unterminated</I></Body></Envelope>`,
		// Divergence regressions (also pinned as fuzz corpus): "]]>" in
		// character data, PIs without a target, directives and xml
		// declarations inside blocks (the legacy path cannot replay them).
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns="urn:i">a]]>b</I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns=""><??></I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns=""><!"></I></Body></Envelope>`,
		`<Envelope xmlns="` + soapNS + `"><Body><I xmlns=""><?xml version="1.0"?></I></Body></Envelope>`,
	}
	for i, doc := range docs {
		if env, ok := decodeScan([]byte(doc)); ok {
			// Acceptance is only legal if encoding/xml agrees completely.
			if _, err := decodeZeroCopy([]byte(doc)); err != nil {
				t.Fatalf("case %d: scanner accepted (%+v) what encoding/xml rejects (%v):\n%q",
					i, env, err, doc)
			}
		}
	}
}

// TestScannerDeepNesting: past the fixed name-stack depth the scanner must
// fall back, and the ladder still decodes the document.
func TestScannerDeepNesting(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`<Envelope xmlns="` + Namespace + `"><Body><I xmlns="urn:i">`)
	for i := 0; i < maxScanDepth+4; i++ {
		sb.WriteString("<N>")
	}
	sb.WriteString("x")
	for i := 0; i < maxScanDepth+4; i++ {
		sb.WriteString("</N>")
	}
	sb.WriteString(`</I></Body></Envelope>`)
	doc := []byte(sb.String())
	if _, ok := decodeScan(doc); ok {
		t.Fatal("scanner accepted nesting beyond its stack depth")
	}
	env, err := Decode(doc)
	if err != nil {
		t.Fatalf("fallback decode: %v", err)
	}
	if len(env.Body.Blocks) != 1 {
		t.Fatalf("body blocks = %d", len(env.Body.Blocks))
	}
}

// TestAddressingCache: one parse serves repeated lookups, and header
// mutations invalidate the cache.
func TestAddressingCache(t *testing.T) {
	env := buildWireEnvelope(t, "cached")
	first := env.Addressing()
	if first.To != "mem://peer" {
		t.Fatalf("To = %q", first.To)
	}
	if again := env.Addressing(); !reflect.DeepEqual(first, again) {
		t.Fatalf("cached addressing diverged: %+v vs %+v", first, again)
	}
	a := first
	a.To = "mem://elsewhere"
	if err := env.SetAddressing(a); err != nil {
		t.Fatal(err)
	}
	if got := env.Addressing().To; got != "mem://elsewhere" {
		t.Fatalf("stale cache after SetAddressing: To = %q", got)
	}
	env.RemoveHeader(wsa.Namespace, "To")
	if got := env.Addressing().To; got != "" {
		t.Fatalf("stale cache after RemoveHeader: To = %q", got)
	}
	// Snapshots share the cache but not mutations.
	snap := env.Snapshot()
	if err := env.SetAddressing(wsa.Headers{To: "mem://mutated", Action: "urn:x"}); err != nil {
		t.Fatal(err)
	}
	if got := snap.Addressing().To; got != "" {
		t.Fatalf("original mutation leaked into snapshot cache: To = %q", got)
	}
}

// TestAddressingTextExtraction: the direct text extraction agrees with the
// encoding/xml block decode across entity, whitespace, and structure edge
// cases — including ones that force the slow path.
func TestAddressingTextExtraction(t *testing.T) {
	cases := []string{
		`<To xmlns="` + wsa.Namespace + `">mem://plain</To>`,
		`<To xmlns="` + wsa.Namespace + `">a&amp;b&lt;c&gt;&quot;d&quot;&apos;e&#65;&#x42;</To>`,
		`<To xmlns="` + wsa.Namespace + `"> spaced  out </To>`,
		`<To xmlns="` + wsa.Namespace + `"></To>`,
		`<To xmlns="` + wsa.Namespace + `"/>`,
		`<To xmlns="` + wsa.Namespace + `" extra="a>b/>c">v</To>`,
		`<To xmlns="` + wsa.Namespace + `">line1&#10;line2</To>`,
		`<To xmlns="` + wsa.Namespace + `">ünïcødé ✓ 日本語</To>`,
		// Slow-path shapes: child elements, CDATA, comments.
		`<To xmlns="` + wsa.Namespace + `"><!-- c -->text</To>`,
		`<To xmlns="` + wsa.Namespace + `"><![CDATA[raw]]></To>`,
	}
	for _, raw := range cases {
		doc := `<Envelope xmlns="` + Namespace + `"><Header>` + raw + `</Header><Body/></Envelope>`
		env, err := Decode([]byte(doc))
		if err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
		var want toHeader
		b, ok := env.HeaderBlock(wsa.Namespace, "To")
		if !ok {
			t.Fatalf("no To block in %s", raw)
		}
		if err := b.Decode(&want); err != nil {
			t.Fatalf("xml decode %s: %v", raw, err)
		}
		if got := env.Addressing().To; got != want.Value {
			t.Fatalf("To extraction %q != xml %q for %s", got, want.Value, raw)
		}
	}
}

// TestPoolRoundTrip: pooled buffers keep renders intact and recycle cleanly
// across size classes.
func TestPoolRoundTrip(t *testing.T) {
	for _, n := range []int{1, 100, 511, 512, 513, 4096, 1 << 16, 2 << 20} {
		b := getBytes(n)
		if len(b) != 0 || cap(b) < n {
			t.Fatalf("getBytes(%d): len=%d cap=%d", n, len(b), cap(b))
		}
		b = append(b, bytes.Repeat([]byte{0xAB}, n)...)
		putBytes(b)
	}
	// A recycled buffer must come back zero-length with its capacity.
	big := getBytes(1 << 14)
	big = append(big, "payload"...)
	putBytes(big)
	again := getBytes(1 << 14)
	if len(again) != 0 {
		t.Fatalf("recycled buffer not reset: len=%d", len(again))
	}
}
