package soap

import (
	"bytes"
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"sync"
	"unicode/utf8"

	"wsgossip/internal/wsa"
)

// The zero-copy wire path.
//
// A gossiped notification crosses many disseminators, and each hop used to
// pay for two full encoding/xml passes: capture re-tokenized every header
// and body block through a fresh decoder+encoder, and serialization ran the
// whole envelope through xml.NewEncoder again. This file replaces both
// directions on the canonical wire format:
//
//   - capture: Decode walks the token stream once and slices each block
//     verbatim out of the input buffer via Decoder.InputOffset, so Block.Raw
//     shares the inbound message's memory (no per-token re-encode);
//   - replay: Encode writes the fixed Envelope/Header/Body scaffolding and
//     splices each Block.Raw directly into the output, sized exactly, with
//     sync.Pool scratch for the parts that need buffering;
//   - fan-out: EncodeTemplate serializes an envelope once, leaving a single
//     insertion point inside the Header; RenderTo then produces a complete
//     per-target message by splicing only the wsa:To block.
//
// The canonical format declares every namespace with a default xmlns
// attribute on the element that introduces it and never uses prefixes.
// Documents that declare namespace prefixes ("xmlns:"), and blocks whose
// meaning depends on a default namespace declared outside their own bytes,
// fall back to the original encoding/xml path, so arbitrary SOAP input
// remains accepted — it just doesn't get the fast path.

// Fixed scaffolding of the canonical wire format. Blocks are spliced
// between the container tags; Header and Body inherit the envelope's
// default namespace, and every block carries its own xmlns declaration.
const (
	wireEnvOpen     = `<Envelope xmlns="` + Namespace + `">`
	wireHeaderOpen  = `<Header>`
	wireHeaderClose = `</Header>`
	wireBodyOpen    = `<Body>`
	wireBodyClose   = `</Body>`
	wireEnvClose    = `</Envelope>`
	wireToOpen      = `<To xmlns="` + wsa.Namespace + `">`
	wireToClose     = `</To>`
)

// ErrNotSpliceable reports an envelope that cannot go through the verbatim
// splice serializer (e.g. a block captured from a prefixed document);
// callers fall back to per-target encoding.
var ErrNotSpliceable = errors.New("soap: envelope not spliceable")

// errNotSelfContained aborts the zero-copy capture when a block's bytes
// depend on namespace context declared outside the block.
var errNotSelfContained = errors.New("soap: block not self-contained")

// bufPool recycles scratch buffers across encodes; rendered messages are
// copied out exactly sized, so pooled memory never escapes to callers.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

// ---------------------------------------------------------------------------
// Zero-copy capture

var soapEnvelopeName = xml.Name{Space: Namespace, Local: "Envelope"}

// decodeZeroCopy parses data with a single token walk, slicing each header
// and body block verbatim out of data. Block.Raw aliases data: the buffer
// must not be modified afterwards (transports hand over ownership).
func decodeZeroCopy(data []byte) (*Envelope, error) {
	d := xml.NewDecoder(bytes.NewReader(data))
	var root xml.StartElement
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("soap: decode envelope: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			root = se
			break
		}
	}
	if root.Name != soapEnvelopeName {
		return nil, fmt.Errorf("soap: decode envelope: expected {%s}Envelope, got {%s}%s",
			Namespace, root.Name.Space, root.Name.Local)
	}
	env := &Envelope{XMLName: root.Name}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, fmt.Errorf("soap: decode envelope: %w", err)
		}
		switch t := tok.(type) {
		case xml.EndElement:
			return env, nil
		case xml.StartElement:
			switch {
			case t.Name.Space == Namespace && t.Name.Local == "Header":
				if env.Header == nil {
					env.Header = &Header{XMLName: t.Name}
				}
				if err := captureBlocks(d, data, &env.Header.Blocks); err != nil {
					return nil, err
				}
			case t.Name.Space == Namespace && t.Name.Local == "Body":
				env.Body.XMLName = t.Name
				if err := captureBlocks(d, data, &env.Body.Blocks); err != nil {
					return nil, err
				}
			default:
				if err := d.Skip(); err != nil {
					return nil, fmt.Errorf("soap: decode envelope: %w", err)
				}
			}
		}
	}
}

// captureBlocks slices every child element of the container whose start tag
// the decoder just consumed. Each slice spans the child's start tag through
// its end tag, verbatim.
func captureBlocks(d *xml.Decoder, data []byte, out *[]Block) error {
	for {
		off := d.InputOffset() // position of '<' once the next token is a start tag
		tok, err := d.Token()
		if err != nil {
			return fmt.Errorf("soap: capture block: %w", err)
		}
		switch t := tok.(type) {
		case xml.EndElement:
			return nil
		case xml.StartElement:
			// A namespaced start tag without its own default-xmlns
			// declaration inherits the container's default namespace, which
			// a verbatim slice would lose when replayed elsewhere.
			if t.Name.Space != "" && !hasDefaultNSDecl(t.Attr) {
				return errNotSelfContained
			}
			if err := skipBlock(d); err != nil {
				return err
			}
			*out = append(*out, Block{XMLName: t.Name, Raw: data[off:d.InputOffset()]})
		}
	}
}

// skipBlock consumes a block element like Decoder.Skip, but rejects tokens
// the legacy path cannot replay — directives and xml-declaration PIs fail
// Block.UnmarshalXML's re-encode, so a verbatim slice containing one would
// make Decode accept what the legacy path rejects. Declining to the legacy
// path keeps both rungs in exact agreement either way.
func skipBlock(d *xml.Decoder) error {
	depth := 1
	for depth > 0 {
		tok, err := d.Token()
		if err != nil {
			return fmt.Errorf("soap: capture block: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
		case xml.EndElement:
			depth--
		case xml.Directive:
			return errNotSelfContained
		case xml.ProcInst:
			if t.Target == "xml" {
				return errNotSelfContained
			}
		}
	}
	return nil
}

// hasDefaultNSDecl reports whether attrs carry a default xmlns declaration.
func hasDefaultNSDecl(attrs []xml.Attr) bool {
	for _, a := range attrs {
		if a.Name.Space == "" && a.Name.Local == "xmlns" {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Splice serialization

// blockSplice analyzes b's start tag for verbatim splicing into the
// canonical scaffold. inject is the default-xmlns declaration to insert
// after the tag name ("" when raw already declares one) and insertAt its
// byte offset in Raw. ok is false when the block resists splicing (prefixed
// names, malformed or hand-built raw) and the legacy encoder must run.
func blockSplice(b Block) (inject string, insertAt int, ok bool) {
	raw := b.Raw
	if len(raw) < 3 || raw[0] != '<' {
		return "", 0, false
	}
	// Tag name: must match the block's unprefixed local name.
	i := 1
	for i < len(raw) && !isTagDelim(raw[i]) {
		if raw[i] == ':' {
			return "", 0, false
		}
		i++
	}
	if string(raw[1:i]) != b.XMLName.Local {
		return "", 0, false
	}
	insertAt = i
	// Attribute scan: find a default xmlns declaration, reject prefixed
	// declarations or attributes.
	hasDecl := false
	for i < len(raw) {
		for i < len(raw) && isXMLSpace(raw[i]) {
			i++
		}
		if i >= len(raw) {
			return "", 0, false
		}
		if raw[i] == '>' {
			break
		}
		if raw[i] == '/' { // self-closing: <Name .../>
			break
		}
		// Attribute name.
		nameStart := i
		for i < len(raw) && raw[i] != '=' && !isXMLSpace(raw[i]) && raw[i] != '>' {
			if raw[i] == ':' {
				return "", 0, false
			}
			i++
		}
		name := string(raw[nameStart:i])
		for i < len(raw) && isXMLSpace(raw[i]) {
			i++
		}
		if i >= len(raw) || raw[i] != '=' {
			return "", 0, false
		}
		i++
		for i < len(raw) && isXMLSpace(raw[i]) {
			i++
		}
		if i >= len(raw) || (raw[i] != '"' && raw[i] != '\'') {
			return "", 0, false
		}
		quote := raw[i]
		i++
		for i < len(raw) && raw[i] != quote {
			i++
		}
		if i >= len(raw) {
			return "", 0, false
		}
		i++
		if name == "xmlns" {
			hasDecl = true
		}
	}
	if !hasDecl {
		// The canonical scaffold's default namespace is the SOAP envelope
		// namespace; a declaration-free block must pin its own.
		inject = ` xmlns="` + escapeAttr(b.XMLName.Space) + `"`
	}
	return inject, insertAt, true
}

func isTagDelim(c byte) bool {
	return c == '>' || c == '/' || isXMLSpace(c)
}

func isXMLSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// escapeAttr escapes s for use inside a double-quoted attribute value.
func escapeAttr(s string) string {
	if !needsEscape(s) && utf8.ValidString(s) {
		return s
	}
	buf := getBuf()
	defer bufPool.Put(buf)
	_ = xml.EscapeText(buf, []byte(s))
	return buf.String()
}

func needsEscape(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<', '>', '&', '\'', '"', '\t', '\n', '\r':
			return true
		}
	}
	return false
}

// spliceParts is the per-block analysis an encode pass reuses.
type spliceParts struct {
	inject   string
	insertAt int
}

// analyzeSplice checks every block of e and returns the per-block splice
// plan plus the exact serialized size of the variable parts.
func analyzeSplice(e *Envelope) (header, body []spliceParts, blockBytes int, ok bool) {
	analyze := func(blocks []Block) ([]spliceParts, bool) {
		parts := make([]spliceParts, len(blocks))
		for i, b := range blocks {
			inject, at, ok := blockSplice(b)
			if !ok {
				return nil, false
			}
			parts[i] = spliceParts{inject: inject, insertAt: at}
			blockBytes += len(b.Raw) + len(inject)
		}
		return parts, true
	}
	if e.Header != nil {
		if header, ok = analyze(e.Header.Blocks); !ok {
			return nil, nil, 0, false
		}
	}
	if body, ok = analyze(e.Body.Blocks); !ok {
		return nil, nil, 0, false
	}
	return header, body, blockBytes, true
}

// appendBlock splices one block into dst per its splice plan.
func appendBlock(dst []byte, b Block, p spliceParts) []byte {
	if p.inject == "" {
		return append(dst, b.Raw...)
	}
	dst = append(dst, b.Raw[:p.insertAt]...)
	dst = append(dst, p.inject...)
	return append(dst, b.Raw[p.insertAt:]...)
}

// encodeSplice serializes e on the fast path: one exactly-sized allocation,
// every block spliced verbatim.
func encodeSplice(e *Envelope) ([]byte, bool) {
	header, body, blockBytes, ok := analyzeSplice(e)
	if !ok {
		return nil, false
	}
	n := len(xml.Header) + len(wireEnvOpen) + len(wireBodyOpen) + len(wireBodyClose) + len(wireEnvClose) + blockBytes
	if e.Header != nil {
		n += len(wireHeaderOpen) + len(wireHeaderClose)
	}
	out := make([]byte, 0, n)
	out = append(out, xml.Header...)
	out = append(out, wireEnvOpen...)
	if e.Header != nil {
		out = append(out, wireHeaderOpen...)
		for i, b := range e.Header.Blocks {
			out = appendBlock(out, b, header[i])
		}
		out = append(out, wireHeaderClose...)
	}
	out = append(out, wireBodyOpen...)
	for i, b := range e.Body.Blocks {
		out = appendBlock(out, b, body[i])
	}
	out = append(out, wireBodyClose...)
	out = append(out, wireEnvClose...)
	return out, true
}

// encodeLegacy is the original encoding/xml serializer, kept as the
// fallback for splice-resistant envelopes; scratch comes from the pool.
func (e *Envelope) encodeLegacy() ([]byte, error) {
	buf := getBuf()
	defer bufPool.Put(buf)
	buf.WriteString(xml.Header)
	enc := xml.NewEncoder(buf)
	if err := enc.Encode(e); err != nil {
		return nil, fmt.Errorf("soap: encode envelope: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return nil, fmt.Errorf("soap: flush envelope: %w", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// decodeLegacy is the original encoding/xml parser: Block.UnmarshalXML
// re-encodes each block token by token. It remains the fallback for
// documents the zero-copy walk cannot slice safely (namespace prefixes,
// context-dependent blocks).
func decodeLegacy(data []byte) (*Envelope, error) {
	var env Envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("soap: decode envelope: %w", err)
	}
	return &env, nil
}

// ---------------------------------------------------------------------------
// Encode-once fan-out templates

// WireTemplate is an envelope serialized exactly once, with a single
// insertion point inside the Header element where per-target blocks are
// spliced. Fan-out loops render one complete message per peer without
// re-encoding anything but the wsa:To header.
type WireTemplate struct {
	pre  []byte // scaffold and stable blocks before the insertion point
	post []byte // "</Header><Body>…</Body></Envelope>"
}

// EncodeTemplate serializes e once with an insertion point at the end of
// its header blocks. Any existing wsa:To header is excluded from the
// template — RenderTo supplies the per-target To, and a stale block would
// win the receiver's first-match header lookup and misaddress every copy.
// Splice-resistant envelopes return ErrNotSpliceable; callers fall back to
// per-target encoding.
func (e *Envelope) EncodeTemplate() (*WireTemplate, error) {
	src := e
	if _, ok := e.HeaderBlock(wsa.Namespace, "To"); ok {
		src = e.Snapshot()
		src.RemoveHeader(wsa.Namespace, "To")
	}
	return src.encodeTemplate()
}

func (e *Envelope) encodeTemplate() (*WireTemplate, error) {
	header, body, blockBytes, ok := analyzeSplice(e)
	if !ok {
		return nil, ErrNotSpliceable
	}
	n := len(xml.Header) + len(wireEnvOpen) + len(wireHeaderOpen) + len(wireHeaderClose) +
		len(wireBodyOpen) + len(wireBodyClose) + len(wireEnvClose) + blockBytes
	backing := make([]byte, 0, n)
	backing = append(backing, xml.Header...)
	backing = append(backing, wireEnvOpen...)
	backing = append(backing, wireHeaderOpen...)
	if e.Header != nil {
		for i, b := range e.Header.Blocks {
			backing = appendBlock(backing, b, header[i])
		}
	}
	split := len(backing)
	backing = append(backing, wireHeaderClose...)
	backing = append(backing, wireBodyOpen...)
	for i, b := range e.Body.Blocks {
		backing = appendBlock(backing, b, body[i])
	}
	backing = append(backing, wireBodyClose...)
	backing = append(backing, wireEnvClose...)
	return &WireTemplate{pre: backing[:split], post: backing[split:]}, nil
}

// RenderTo returns a complete serialized envelope addressed to addr: the
// template's bytes with a wsa:To header block spliced at the insertion
// point. Each call returns a buffer the caller owns exclusively, so
// rendered messages can be handed to SendEncoded without copying; the
// buffer is sized exactly (the escaped To length is computed up front) and
// drawn from the wire buffer pool, which the bindings feed back into after
// delivery.
func (t *WireTemplate) RenderTo(addr string) []byte {
	toLen := len(addr)
	var esc *bytes.Buffer
	if needsEscape(addr) || !utf8.ValidString(addr) {
		esc = getBuf()
		_ = xml.EscapeText(esc, []byte(addr))
		toLen = esc.Len()
	}
	out := getBytes(len(t.pre) + len(wireToOpen) + toLen + len(wireToClose) + len(t.post))
	out = append(out, t.pre...)
	out = append(out, wireToOpen...)
	if esc != nil {
		out = append(out, esc.Bytes()...)
		bufPool.Put(esc)
	} else {
		out = append(out, addr...)
	}
	out = append(out, wireToClose...)
	out = append(out, t.post...)
	countBytesOut(len(out))
	return out
}

// Size returns the serialized size in bytes of a rendered message,
// excluding the per-target To block.
func (t *WireTemplate) Size() int { return len(t.pre) + len(t.post) }

// ---------------------------------------------------------------------------
// Encoded send path

// EncodedSender is implemented by bindings that accept a pre-serialized
// envelope, skipping the redundant Encode inside Send. A successful
// SendEncoded takes full ownership of data: the binding may retain it or
// recycle it into the wire buffer pool after delivery, so the caller must
// not read or modify it afterwards, and must not pass the same buffer to
// two sends. On error the buffer stays with the caller.
type EncodedSender interface {
	SendEncoded(ctx context.Context, to string, data []byte) error
}

// SendBytes sends a pre-serialized envelope through caller: directly when
// the binding implements EncodedSender, otherwise by decoding once and
// using the plain Send path.
func SendBytes(ctx context.Context, caller Caller, to string, data []byte) error {
	if es, ok := caller.(EncodedSender); ok {
		return es.SendEncoded(ctx, to, data)
	}
	env, err := Decode(data)
	if err != nil {
		return err
	}
	return caller.Send(ctx, to, env)
}

// Fanout sends one logical envelope (addressing must omit To) to every
// target. On an EncodedSender binding the message is serialized exactly
// once (EncodeTemplate) and a per-target copy rendered at the wsa:To
// insertion point; plain Callers, and splice-resistant envelopes — e.g.
// blocks captured from documents with prefixed namespace declarations —
// take the per-target encode the fan-out paths ran before the encode-once
// wire path. Returns the successful send count and the targets that failed
// (nil when none did). A ctx cancelled mid-fanout stops issuing new sends;
// the not-yet-attempted targets are reported as failed so the caller's
// accounting stays exact. Every multi-target send in the stack — gossip
// forward/announce/repair/pull and the aggregation floods and exchange
// rounds — goes through here.
func Fanout(ctx context.Context, caller Caller, env *Envelope, targets []string) (sent int, failed []string) {
	if es, ok := caller.(EncodedSender); ok {
		if tmpl, err := env.EncodeTemplate(); err == nil {
			for i, target := range targets {
				if ctx.Err() != nil {
					return sent, append(failed, targets[i:]...)
				}
				if err := es.SendEncoded(ctx, target, tmpl.RenderTo(target)); err != nil {
					failed = append(failed, target)
					continue
				}
				sent++
			}
			return sent, failed
		}
	}
	a := env.Addressing()
	for i, target := range targets {
		if ctx.Err() != nil {
			return sent, append(failed, targets[i:]...)
		}
		out := env.Snapshot()
		a.To = target
		if err := out.SetAddressing(a); err != nil {
			failed = append(failed, target)
			continue
		}
		if err := caller.Send(ctx, target, out); err != nil {
			failed = append(failed, target)
			continue
		}
		sent++
	}
	return sent, failed
}
