package soap

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"wsgossip/internal/wsa"
)

// Equivalence tests for the zero-copy wire path: the splice serializer and
// the slice-based capture must agree with the original encoding/xml path on
// every envelope either can produce. Byte equivalence to the legacy
// serializer is deliberately NOT asserted — the legacy encoder emitted a
// duplicate xmlns attribute per block and grew the message on every
// re-encode — so the properties checked are (a) semantic equivalence of
// both paths, and (b) byte-stability of the new path across wire cycles,
// which the legacy path never had.

// xmlNode is a normalized view of one element: name, non-namespace
// attributes, character content, and children, for semantic comparison.
type xmlNode struct {
	XMLName xml.Name
	Attrs   []xml.Attr `xml:",any,attr"`
	Content string     `xml:",chardata"`
	Nodes   []xmlNode  `xml:",any"`
}

func (n *xmlNode) normalize() {
	kept := n.Attrs[:0]
	for _, a := range n.Attrs {
		if a.Name.Local == "xmlns" || a.Name.Space == "xmlns" {
			continue
		}
		kept = append(kept, a)
	}
	n.Attrs = kept
	if len(kept) == 0 {
		n.Attrs = nil
	}
	n.Content = strings.TrimSpace(n.Content)
	for i := range n.Nodes {
		n.Nodes[i].normalize()
	}
	if len(n.Nodes) == 0 {
		n.Nodes = nil
	}
}

func blockNode(t *testing.T, b Block) xmlNode {
	t.Helper()
	var n xmlNode
	if err := xml.Unmarshal(b.Raw, &n); err != nil {
		t.Fatalf("re-parse block %v: %v\nraw: %s", b.XMLName, err, b.Raw)
	}
	n.normalize()
	return n
}

// equivalent asserts that two envelopes carry the same blocks with the same
// names and normalized content.
func equivalent(t *testing.T, label string, a, b *Envelope) {
	t.Helper()
	blocksOf := func(e *Envelope) []Block {
		var out []Block
		if e.Header != nil {
			out = append(out, e.Header.Blocks...)
		}
		return append(out, e.Body.Blocks...)
	}
	ab, bb := blocksOf(a), blocksOf(b)
	if len(ab) != len(bb) {
		t.Fatalf("%s: block count %d != %d", label, len(ab), len(bb))
	}
	for i := range ab {
		if ab[i].XMLName != bb[i].XMLName {
			t.Fatalf("%s: block %d name %v != %v", label, i, ab[i].XMLName, bb[i].XMLName)
		}
		an, bn := blockNode(t, ab[i]), blockNode(t, bb[i])
		if !reflect.DeepEqual(an, bn) {
			t.Fatalf("%s: block %d content\n  %+v\n  !=\n  %+v\nraw a: %s\nraw b: %s",
				label, i, an, bn, ab[i].Raw, bb[i].Raw)
		}
	}
	if !reflect.DeepEqual(a.Addressing(), b.Addressing()) {
		t.Fatalf("%s: addressing %+v != %+v", label, a.Addressing(), b.Addressing())
	}
}

type wireBody struct {
	XMLName xml.Name `xml:"urn:wiretest Item"`
	Attr    string   `xml:"attr,attr"`
	Value   string   `xml:"Value"`
	Nested  struct {
		Deep string `xml:"Deep"`
	} `xml:"Nested"`
}

type wireHeader struct {
	XMLName xml.Name `xml:"urn:wiretest:hdr Meta"`
	Tag     string   `xml:"Tag,attr"`
	Body    string   `xml:",chardata"`
}

func buildWireEnvelope(t *testing.T, value string) *Envelope {
	t.Helper()
	env := NewEnvelope()
	if err := env.SetAddressing(wsa.Headers{
		To: "mem://peer", Action: "urn:wiretest:op", MessageID: "urn:uuid:w1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := env.AddHeader(wireHeader{Tag: "t&<>\"'", Body: "header text"}); err != nil {
		t.Fatal(err)
	}
	b := wireBody{Attr: "a<b&c", Value: value}
	b.Nested.Deep = "deep " + value
	if err := env.SetBody(b); err != nil {
		t.Fatal(err)
	}
	return env
}

// TestSpliceMatchesLegacyEncode: both serializers of the same envelope
// decode to equivalent envelopes.
func TestSpliceMatchesLegacyEncode(t *testing.T) {
	env := buildWireEnvelope(t, "payload & <value> 'q'")
	fast, ok := encodeSplice(env)
	if !ok {
		t.Fatal("canonical envelope rejected by splice encoder")
	}
	slow, err := env.encodeLegacy()
	if err != nil {
		t.Fatal(err)
	}
	fastEnv, err := Decode(fast)
	if err != nil {
		t.Fatalf("decode splice output: %v\n%s", err, fast)
	}
	slowEnv, err := Decode(slow)
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, "splice vs legacy encode", fastEnv, slowEnv)
}

// TestZeroCopyMatchesLegacyDecode: both decoders agree on a range of wire
// documents — attributes, nested blocks, namespaces, CDATA, comments,
// entities, whitespace.
func TestZeroCopyMatchesLegacyDecode(t *testing.T) {
	docs := map[string]string{
		"canonical": `<?xml version="1.0" encoding="UTF-8"?>` +
			`<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Header>` +
			`<Meta xmlns="urn:wiretest:hdr" Tag="x">hdr</Meta></Header>` +
			`<Body><Item xmlns="urn:wiretest" attr="v"><Value>a&amp;b</Value></Item></Body></Envelope>`,
		"cdata": `<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body>` +
			`<Item xmlns="urn:wiretest"><Value><![CDATA[raw <markup> & stuff]]></Value></Item></Body></Envelope>`,
		"comments-and-space": "<Envelope xmlns=\"http://www.w3.org/2003/05/soap-envelope\">\n  " +
			"<!-- a comment -->\n  <Header>\n    <Meta xmlns=\"urn:wiretest:hdr\">m</Meta>\n  </Header>\n  " +
			"<Body>\n    <Item xmlns=\"urn:wiretest\"><Value>v</Value></Item>\n  </Body>\n</Envelope>",
		"nested-namespaces": `<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body>` +
			`<Item xmlns="urn:wiretest"><Sub xmlns="urn:other"><Deep>x</Deep></Sub><Value>y</Value></Item></Body></Envelope>`,
		"entities": `<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body>` +
			`<Item xmlns="urn:wiretest" attr="&lt;&amp;&gt;"><Value>&#65;&#x42;c &quot;q&quot;</Value></Item></Body></Envelope>`,
		"empty-body": `<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body></Body></Envelope>`,
		"no-header-decl-free-block": `<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body>` +
			`<Plain xmlns="">text</Plain></Body></Envelope>`,
		"legacy-duplicate-xmlns": `<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope">` +
			`<Body xmlns="http://www.w3.org/2003/05/soap-envelope">` +
			`<Item xmlns="urn:wiretest" xmlns="urn:wiretest"><Value>dup</Value></Item></Body></Envelope>`,
		// Prefixed documents exercise the legacy fallback inside Decode.
		"prefixed": `<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope" xmlns:w="urn:wiretest">` +
			`<env:Body><w:Item attr="v"><w:Value>pfx</w:Value></w:Item></env:Body></env:Envelope>`,
		// A block inheriting the envelope's default namespace cannot be
		// sliced verbatim; the zero-copy walk must hand it to the fallback.
		"inherited-default-ns": `<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body>` +
			`<Fault><Code><Value>soapenv</Value></Code></Fault></Body></Envelope>`,
	}
	for name, doc := range docs {
		t.Run(name, func(t *testing.T) {
			got, err := Decode([]byte(doc))
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			want, err := decodeLegacy([]byte(doc))
			if err != nil {
				t.Fatalf("decodeLegacy: %v", err)
			}
			equivalent(t, name, got, want)
			// And the decoded envelope must survive a wire cycle.
			data, err := got.Encode()
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			again, err := Decode(data)
			if err != nil {
				t.Fatalf("re-decode: %v\n%s", err, data)
			}
			equivalent(t, name+" after cycle", got, again)
		})
	}
}

// TestWireByteStability: the new path is byte-stable — once an envelope has
// been through one encode, further decode/encode cycles reproduce the exact
// same bytes. (The legacy encoder failed this: every cycle appended a
// duplicate xmlns attribute per block.)
func TestWireByteStability(t *testing.T) {
	env := buildWireEnvelope(t, "stable")
	first, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	data := first
	for i := 0; i < 3; i++ {
		decoded, err := Decode(data)
		if err != nil {
			t.Fatalf("cycle %d decode: %v", i, err)
		}
		next, err := decoded.Encode()
		if err != nil {
			t.Fatalf("cycle %d encode: %v", i, err)
		}
		if !bytes.Equal(next, data) {
			t.Fatalf("cycle %d changed bytes:\n%s\nvs\n%s", i, data, next)
		}
		data = next
	}
}

// TestZeroCopyAliasesInput: captured blocks slice the input buffer instead
// of re-encoding into fresh memory.
func TestZeroCopyAliasesInput(t *testing.T) {
	data, err := buildWireEnvelope(t, "alias").Encode()
	if err != nil {
		t.Fatal(err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Body.Blocks) != 1 {
		t.Fatalf("body blocks = %d", len(env.Body.Blocks))
	}
	raw := env.Body.Blocks[0].Raw
	start := bytes.Index(data, []byte("<Item"))
	if start < 0 {
		t.Fatalf("no Item in %s", data)
	}
	if &raw[0] != &data[start] {
		t.Fatal("body block raw is a copy, not a slice of the input buffer")
	}
}

// TestEncodeTemplateRenderTo: a rendered per-target message is equivalent
// to fully encoding the same envelope with To set, for plain and
// escape-needing addresses.
func TestEncodeTemplateRenderTo(t *testing.T) {
	env := buildWireEnvelope(t, "tmpl")
	// buildWireEnvelope sets a stale To ("mem://peer"); EncodeTemplate must
	// drop it so the rendered per-target To is the only one — a leftover
	// block would win the receiver's first-match header lookup.
	tmpl, err := env.EncodeTemplate()
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []string{"mem://peer1", "http://host:8080/svc?a=1&b=<2>"} {
		rendered, err := Decode(tmpl.RenderTo(addr))
		if err != nil {
			t.Fatalf("decode rendered: %v", err)
		}
		if got := rendered.Addressing().To; got != addr {
			t.Fatalf("rendered To = %q, want %q", got, addr)
		}
		toBlocks := 0
		for _, b := range rendered.Header.Blocks {
			if b.XMLName.Local == "To" && b.XMLName.Space == wsa.Namespace {
				toBlocks++
			}
		}
		if toBlocks != 1 {
			t.Fatalf("rendered To blocks = %d, want exactly 1 (stale To must be dropped)", toBlocks)
		}
		full := env.Snapshot()
		a := full.Addressing()
		a.To = addr
		if err := full.SetAddressing(a); err != nil {
			t.Fatal(err)
		}
		data, err := full.Encode()
		if err != nil {
			t.Fatal(err)
		}
		direct, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rendered.Addressing(), direct.Addressing()) {
			t.Fatalf("addressing %+v != %+v", rendered.Addressing(), direct.Addressing())
		}
		var rb, db wireBody
		if err := rendered.DecodeBody(&rb); err != nil {
			t.Fatal(err)
		}
		if err := direct.DecodeBody(&db); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rb, db) {
			t.Fatalf("body %+v != %+v", rb, db)
		}
	}
}

// TestRenderToFreshBuffers: every render owns its bytes (SendEncoded hands
// over ownership, so shared buffers would corrupt queued messages).
func TestRenderToFreshBuffers(t *testing.T) {
	env := buildWireEnvelope(t, "fresh")
	env.RemoveHeader(wsa.Namespace, "To")
	tmpl, err := env.EncodeTemplate()
	if err != nil {
		t.Fatal(err)
	}
	a := tmpl.RenderTo("mem://a")
	b := tmpl.RenderTo("mem://b")
	copyA := append([]byte(nil), a...)
	for i := range b {
		b[i] = 0
	}
	if !bytes.Equal(a, copyA) {
		t.Fatal("renders share a buffer")
	}
}

// TestSnapshotIndependence: block-list mutations on a snapshot never leak
// into the original (and vice versa), even though Raw bytes are shared.
func TestSnapshotIndependence(t *testing.T) {
	env := buildWireEnvelope(t, "snap")
	snap := env.Snapshot()
	if !snap.RemoveHeader("urn:wiretest:hdr", "Meta") {
		t.Fatal("snapshot missing header")
	}
	if _, ok := env.HeaderBlock("urn:wiretest:hdr", "Meta"); !ok {
		t.Fatal("snapshot mutation leaked into original")
	}
	if err := env.SetAddressing(wsa.Headers{To: "mem://other", Action: "urn:wiretest:op2"}); err != nil {
		t.Fatal(err)
	}
	if got := snap.Addressing().To; got != "mem://peer" {
		t.Fatalf("original mutation leaked into snapshot: To = %q", got)
	}
}

// TestSpliceInjectsNamespace: a hand-built block whose raw bytes carry no
// xmlns declaration must not silently inherit the envelope namespace.
func TestSpliceInjectsNamespace(t *testing.T) {
	cases := []Block{
		{XMLName: xml.Name{Space: "urn:inject", Local: "Foo"}, Raw: []byte(`<Foo><Bar>x</Bar></Foo>`)},
		{XMLName: xml.Name{Local: "Foo"}, Raw: []byte(`<Foo>plain</Foo>`)},
		{XMLName: xml.Name{Space: "urn:inject", Local: "Foo"}, Raw: []byte(`<Foo a="1"/>`)},
	}
	for i, b := range cases {
		env := NewEnvelope()
		env.Body.Blocks = []Block{b}
		data, err := env.Encode()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		decoded, err := Decode(data)
		if err != nil {
			t.Fatalf("case %d decode: %v\n%s", i, err, data)
		}
		if got := decoded.BodyName(); got != b.XMLName {
			t.Fatalf("case %d: body name %v, want %v\nwire: %s", i, got, b.XMLName, data)
		}
	}
}

// TestWireRoundTripQuick: generated envelopes survive the new wire path
// with values intact (the quick-check analogue of FuzzWireRoundTrip).
func TestWireRoundTripQuick(t *testing.T) {
	f := func(value, tag string, n int) bool {
		if !validXMLString(value) || !validXMLString(tag) {
			return true
		}
		env := NewEnvelope()
		if err := env.SetAddressing(wsa.Headers{
			To: "mem://q", Action: "urn:q", MessageID: wsa.MessageID(fmt.Sprintf("urn:uuid:%d", n)),
		}); err != nil {
			return false
		}
		if err := env.AddHeader(wireHeader{Tag: tag, Body: value}); err != nil {
			return false
		}
		b := wireBody{Attr: tag, Value: value}
		if err := env.SetBody(b); err != nil {
			return false
		}
		data, err := env.Encode()
		if err != nil {
			return false
		}
		decoded, err := Decode(data)
		if err != nil {
			return false
		}
		var out wireBody
		if err := decoded.DecodeBody(&out); err != nil {
			return false
		}
		var h wireHeader
		if err := decoded.DecodeHeader("urn:wiretest:hdr", "Meta", &h); err != nil {
			return false
		}
		return out.Value == value && out.Attr == tag && h.Tag == tag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func validXMLString(s string) bool {
	if !utf8.ValidString(s) {
		// encoding/xml replaces invalid UTF-8 with U+FFFD on output (both
		// the legacy and the splice path); not a round-trippable input.
		return false
	}
	for _, r := range s {
		if r == 0x09 || r == 0x0A || r == 0x0D {
			continue
		}
		if r < 0x20 || r == 0xFFFE || r == 0xFFFF ||
			(r >= 0xD800 && r <= 0xDFFF) || r > 0x10FFFF {
			return false
		}
	}
	return true
}

// plainCaller hides MemBus's EncodedSender so SendBytes exercises its
// decode-and-Send fallback.
type plainCaller struct{ bus *MemBus }

func (c plainCaller) Call(ctx context.Context, to string, env *Envelope) (*Envelope, error) {
	return c.bus.Call(ctx, to, env)
}
func (c plainCaller) Send(ctx context.Context, to string, env *Envelope) error {
	return c.bus.Send(ctx, to, env)
}

// TestSendBytes: pre-serialized sends arrive identically through an
// EncodedSender binding and through the decode-and-Send fallback. The
// handler decodes inside the delivery (SendEncoded hands buffer ownership
// to the bus, which recycles it after the wave — retaining the request
// envelope would need Clone), and each send encodes afresh for the same
// reason.
func TestSendBytes(t *testing.T) {
	env := buildWireEnvelope(t, "bytes")
	for _, tc := range []struct {
		name string
		wrap func(*MemBus) Caller
	}{
		{"encoded-sender", func(b *MemBus) Caller { return b }},
		{"fallback", func(b *MemBus) Caller { return plainCaller{bus: b} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bus := NewMemBus()
			var got *wireBody
			bus.Register("mem://peer", HandlerFunc(func(_ context.Context, req *Request) (*Envelope, error) {
				var out wireBody
				if err := req.Envelope.DecodeBody(&out); err != nil {
					return nil, err
				}
				got = &out
				return nil, nil
			}))
			data, err := env.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if err := SendBytes(context.Background(), tc.wrap(bus), "mem://peer", data); err != nil {
				t.Fatal(err)
			}
			if got == nil {
				t.Fatal("message not delivered")
			}
			if got.Value != "bytes" {
				t.Fatalf("delivered body = %+v", got)
			}
			if data, err = env.Encode(); err != nil {
				t.Fatal(err)
			}
			if SendBytes(context.Background(), tc.wrap(bus), "mem://missing", data) == nil {
				t.Fatal("send to unknown endpoint succeeded")
			}
		})
	}
}

// FuzzDecodeEquivalence feeds arbitrary documents down the whole decode
// ladder: when the hand-rolled scanner accepts, it must agree with the
// encoding/xml zero-copy path byte for byte; when Decode accepts by any
// rung, the legacy path must agree semantically; no rung may panic or
// mis-capture.
func FuzzDecodeEquivalence(f *testing.F) {
	f.Add([]byte(`<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Header>` +
		`<Meta xmlns="urn:wiretest:hdr" Tag="x">hdr</Meta></Header>` +
		`<Body><Item xmlns="urn:wiretest"><Value>v</Value></Item></Body></Envelope>`))
	f.Add([]byte(`<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">` +
		`<env:Body><a:B xmlns:a="urn:a">x</a:B></env:Body></env:Envelope>`))
	f.Add([]byte(`<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body>` +
		`<I xmlns="urn:i"><![CDATA[<x>&]]></I></Body></Envelope>`))
	f.Add([]byte(`<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body><Plain>t</Plain></Body></Envelope>`))
	f.Add([]byte(`<!-- c --><Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body/></Envelope>`))
	// Scanner-adversarial seeds: structures the byte walk must track
	// exactly — comments/CDATA/PIs inside blocks, '>' and '/>' inside
	// attribute values, nested same-name elements, entities, multibyte
	// runes at tag boundaries, deep nesting, malformed look-alikes.
	for _, doc := range scannerAdversarialDocs() {
		f.Add([]byte(doc))
	}
	f.Add([]byte(`<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body>` +
		`<I xmlns="urn:i" a="</I>"><I a=">">&#xA;</I></I></Body></Envelope>`))
	f.Add([]byte(`<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body>` +
		`<I xmlns="urn:i"><!--->--><V><![CDATA[]]>]]<![CDATA[>]]></V></I></Body></Envelope>`))
	f.Add([]byte("<Envelope xmlns=\"http://www.w3.org/2003/05/soap-envelope\"><Body>" +
		"<I xmlns=\"urn:i\">\xe6\x97\xa5<V a=\"\xe2\x9c\x93\">\xc3\xbc</V>\xe6\x9c\xac</I></Body></Envelope>"))
	f.Add([]byte(`<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body>` +
		`<I xmlns="urn:i">&#55296;&bad;&#x10FFFF;</I></Body></Envelope>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Differential check of the scanner against the encoding/xml
		// zero-copy tokenizer: acceptance implies byte-identical capture.
		if env, ok := decodeScan(data); ok {
			want, err := decodeZeroCopy(data)
			if err != nil {
				t.Fatalf("scanner accepted, zero-copy rejected (%v): %q", err, data)
			}
			blocks := func(e *Envelope) []Block {
				var out []Block
				if e.Header != nil {
					out = append(out, e.Header.Blocks...)
				}
				return append(out, e.Body.Blocks...)
			}
			gb, wb := blocks(env), blocks(want)
			if len(gb) != len(wb) {
				t.Fatalf("scanner blocks %d != zero-copy %d for %q", len(gb), len(wb), data)
			}
			for i := range gb {
				if gb[i].XMLName != wb[i].XMLName || !bytes.Equal(gb[i].Raw, wb[i].Raw) {
					t.Fatalf("scanner block %d (%v, %q) != zero-copy (%v, %q) for %q",
						i, gb[i].XMLName, gb[i].Raw, wb[i].XMLName, wb[i].Raw, data)
				}
			}
			if !reflect.DeepEqual(env.Addressing(), want.Addressing()) {
				t.Fatalf("scanner addressing %+v != zero-copy %+v for %q",
					env.Addressing(), want.Addressing(), data)
			}
		}
		got, err := Decode(data)
		if err != nil {
			return
		}
		want, err := decodeLegacy(data)
		if err != nil {
			// Decode accepted what encoding/xml rejects — the zero-copy
			// walker must never be more permissive.
			t.Fatalf("Decode accepted, legacy rejected (%v): %q", err, data)
		}
		names := func(e *Envelope) []xml.Name {
			var out []xml.Name
			if e.Header != nil {
				for _, b := range e.Header.Blocks {
					out = append(out, b.XMLName)
				}
			}
			for _, b := range e.Body.Blocks {
				out = append(out, b.XMLName)
			}
			return out
		}
		if !reflect.DeepEqual(names(got), names(want)) {
			t.Fatalf("block names %v != %v for %q", names(got), names(want), data)
		}
		// Whatever was captured must re-encode into a decodable document.
		out, err := got.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if _, err := Decode(out); err != nil {
			t.Fatalf("re-decode: %v\nwire: %q\ninput: %q", err, out, data)
		}
	})
}

// FuzzWireRoundTrip fuzzes application values through a full build → encode
// → decode → re-encode cycle, asserting value preservation and stability.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add("hello", "tag")
	f.Add("a&b <c> 'q' \"z\"", "t&<>\"'")
	f.Add("line\nbreak\ttab", "")
	f.Add("ünïcødé ✓", "日本語")
	f.Fuzz(func(t *testing.T, value, tag string) {
		if !validXMLString(value) || !validXMLString(tag) {
			return
		}
		env := NewEnvelope()
		if err := env.SetAddressing(wsa.Headers{To: "mem://f", Action: "urn:f"}); err != nil {
			t.Fatal(err)
		}
		b := wireBody{Attr: tag, Value: value}
		if err := env.SetBody(b); err != nil {
			t.Fatal(err)
		}
		data, err := env.Encode()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := Decode(data)
		if err != nil {
			t.Fatalf("decode: %v\n%q", err, data)
		}
		var out wireBody
		if err := decoded.DecodeBody(&out); err != nil {
			t.Fatal(err)
		}
		if out.Value != value || out.Attr != tag {
			t.Fatalf("round trip (%q, %q) -> (%q, %q)", value, tag, out.Value, out.Attr)
		}
		again, err := decoded.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("wire bytes not stable:\n%q\n%q", data, again)
		}
	})
}
