package soap

import (
	"bytes"
	"testing"
)

func TestProbeEdges(t *testing.T) {
	docs := []string{
		`<?xml version="1.0"?><Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Header><To xmlns="http://www.w3.org/2005/08/addressing">a&amp;b</To></Header><Body><Q xmlns="urn:q" v="x>y"/></Body></Envelope>`,
		`<?xml version="1.0"?><Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body><Q xmlns="urn:q"><![CDATA[<raw>]]></Q></Body></Envelope>`,
		`<?xml version="1.0"?><Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body><Q xmlns=""/></Body></Envelope>`,
	}
	for _, doc := range docs {
		env, err := Decode([]byte(doc))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		out, err := env.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		env2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode %s: %v", out, err)
		}
		out2, err := env2.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("not byte-stable:\n%s\n%s", out, out2)
		}
	}
	// Template render with an address needing escaping.
	env := NewEnvelope()
	env.Body.Blocks = []Block{{XMLName: xmlNameQ(), Raw: []byte(`<Q xmlns="urn:q">v</Q>`)}}
	tmpl, err := env.EncodeTemplate()
	if err != nil {
		t.Fatalf("template: %v", err)
	}
	msg := tmpl.RenderTo(`mem://a&b<c>"d"`)
	got, err := Decode(msg)
	if err != nil {
		t.Fatalf("decode rendered: %v\n%s", err, msg)
	}
	if a := got.Addressing(); a.To != `mem://a&b<c>"d"` {
		t.Fatalf("To = %q, rendered: %s", a.To, msg)
	}
}

func xmlNameQ() (n struct{ Space, Local string }) { n.Space = "urn:q"; n.Local = "Q"; return }
