// Package stockfeed generates the synthetic stock-market workload of the
// paper's motivating scenario (Section 1): a stream of quotes over a symbol
// universe with Zipf-distributed popularity and exponential inter-arrival
// times. The paper's scenario is a workload shape, not a dataset, so a
// seeded synthetic feed is the faithful substitute (DESIGN.md §2).
//
// Key types: Feed (the seeded generator), Quote (one tick). The stockticker
// example and the throughput experiments draw from it.
package stockfeed
