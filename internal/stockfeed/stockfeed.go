package stockfeed

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Quote is one market data event.
type Quote struct {
	Symbol string  `json:"symbol"`
	Seq    uint64  `json:"seq"`
	Price  float64 `json:"price"`
	// OffsetMicros is the event time as microseconds from feed start.
	OffsetMicros int64 `json:"offsetMicros"`
}

// Encode serializes the quote for dissemination payloads.
func (q Quote) Encode() ([]byte, error) {
	data, err := json.Marshal(q)
	if err != nil {
		return nil, fmt.Errorf("stockfeed: encode quote: %w", err)
	}
	return data, nil
}

// DecodeQuote parses a serialized quote.
func DecodeQuote(data []byte) (Quote, error) {
	var q Quote
	if err := json.Unmarshal(data, &q); err != nil {
		return Quote{}, fmt.Errorf("stockfeed: decode quote: %w", err)
	}
	return q, nil
}

// Config configures a feed.
type Config struct {
	// Symbols is the universe size.
	Symbols int
	// ZipfS is the Zipf skew parameter (must be > 1).
	ZipfS float64
	// MeanInterval is the mean quote inter-arrival time.
	MeanInterval time.Duration
	// Seed drives all randomness.
	Seed int64
	// StartPrice is the initial price for every symbol.
	StartPrice float64
	// Volatility scales the per-quote geometric price step.
	Volatility float64
}

// DefaultConfig returns a 500-symbol feed at 1000 quotes/s equivalent.
func DefaultConfig(seed int64) Config {
	return Config{
		Symbols:      500,
		ZipfS:        1.2,
		MeanInterval: time.Millisecond,
		Seed:         seed,
		StartPrice:   100,
		Volatility:   0.002,
	}
}

// Feed produces a deterministic quote stream.
type Feed struct {
	cfg    Config
	rng    *rand.Rand
	zipf   *rand.Zipf
	prices []float64
	seq    uint64
	now    time.Duration
}

// New validates cfg and returns a feed positioned at time zero.
func New(cfg Config) (*Feed, error) {
	if cfg.Symbols <= 0 {
		return nil, errors.New("stockfeed: need at least one symbol")
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("stockfeed: zipf s must be > 1, got %v", cfg.ZipfS)
	}
	if cfg.MeanInterval <= 0 {
		return nil, errors.New("stockfeed: mean interval must be positive")
	}
	if cfg.StartPrice <= 0 {
		cfg.StartPrice = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Symbols-1))
	if zipf == nil {
		return nil, errors.New("stockfeed: invalid zipf parameters")
	}
	prices := make([]float64, cfg.Symbols)
	for i := range prices {
		prices[i] = cfg.StartPrice
	}
	return &Feed{cfg: cfg, rng: rng, zipf: zipf, prices: prices}, nil
}

// SymbolName returns the canonical name for symbol index i.
func SymbolName(i int) string { return fmt.Sprintf("SYM%04d", i) }

// Next produces the next quote: the symbol is Zipf-popular, the
// inter-arrival time exponential, and the price follows a geometric walk.
func (f *Feed) Next() Quote {
	idx := int(f.zipf.Uint64())
	f.now += time.Duration(f.rng.ExpFloat64() * float64(f.cfg.MeanInterval))
	step := math.Exp(f.cfg.Volatility * f.rng.NormFloat64())
	f.prices[idx] *= step
	f.seq++
	return Quote{
		Symbol:       SymbolName(idx),
		Seq:          f.seq,
		Price:        f.prices[idx],
		OffsetMicros: f.now.Microseconds(),
	}
}

// Take returns the next n quotes.
func (f *Feed) Take(n int) []Quote {
	out := make([]Quote, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}

// Produced returns the number of quotes generated so far.
func (f *Feed) Produced() uint64 { return f.seq }
