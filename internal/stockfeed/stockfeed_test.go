package stockfeed

import (
	"strings"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig(1)
	if _, err := New(base); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Symbols = 0 },
		func(c *Config) { c.ZipfS = 1.0 },
		func(c *Config) { c.MeanInterval = 0 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	f1, err := New(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := New(DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	q1 := f1.Take(100)
	q2 := f2.Take(100)
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatalf("quote %d differs: %+v vs %+v", i, q1[i], q2[i])
		}
	}
	f3, err := New(DefaultConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	q3 := f3.Take(100)
	identical := true
	for i := range q1 {
		if q1[i] != q3[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSequenceMonotone(t *testing.T) {
	f, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	var prevSeq uint64
	var prevT int64
	for i := 0; i < 500; i++ {
		q := f.Next()
		if q.Seq != prevSeq+1 {
			t.Fatalf("seq jumped: %d -> %d", prevSeq, q.Seq)
		}
		if q.OffsetMicros < prevT {
			t.Fatalf("time went backwards: %d -> %d", prevT, q.OffsetMicros)
		}
		prevSeq = q.Seq
		prevT = q.OffsetMicros
	}
	if f.Produced() != 500 {
		t.Fatalf("produced = %d", f.Produced())
	}
}

func TestZipfSkew(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Symbols = 100
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const total = 20000
	for i := 0; i < total; i++ {
		counts[f.Next().Symbol]++
	}
	// Zipf: the most popular symbol must dwarf the typical one.
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	if frac := float64(top) / total; frac < 0.2 {
		t.Fatalf("top symbol fraction = %v, want skewed >= 0.2", frac)
	}
	if len(counts) < 10 {
		t.Fatalf("only %d distinct symbols drawn", len(counts))
	}
}

func TestPricesPositive(t *testing.T) {
	f, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if q := f.Next(); q.Price <= 0 {
			t.Fatalf("non-positive price %v", q.Price)
		}
	}
}

func TestMeanIntervalApproximate(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.MeanInterval = 2 * time.Millisecond
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	quotes := f.Take(n)
	last := quotes[n-1].OffsetMicros
	mean := float64(last) / n // microseconds
	if mean < 1700 || mean > 2300 {
		t.Fatalf("mean interval = %vus, want ~2000us", mean)
	}
}

func TestQuoteEncodeDecode(t *testing.T) {
	q := Quote{Symbol: "SYM0001", Seq: 9, Price: 101.25, OffsetMicros: 555}
	data, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQuote(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := DecodeQuote([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
}

func TestSymbolName(t *testing.T) {
	if got := SymbolName(7); got != "SYM0007" {
		t.Fatalf("symbol = %q", got)
	}
	if !strings.HasPrefix(SymbolName(9999), "SYM") {
		t.Fatal("prefix missing")
	}
}
