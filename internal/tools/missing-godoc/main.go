// Command missing-godoc is the documentation gate CI runs over internal/
// and the root package: it fails (exit 1) when a package lacks a package
// comment or an exported top-level identifier lacks a doc comment, so the
// godoc coverage established in the repo-wide documentation pass cannot
// silently erode.
//
// Usage:
//
//	go run ./internal/tools/missing-godoc ./internal/... .
//
// An argument ending in /... is walked recursively (testdata directories
// are skipped); any other argument is checked as a single package
// directory. Test files are ignored. Doc comments are accepted on the
// declaration group or on the individual spec, matching standard godoc
// convention; blank-identifier declarations (compile-time interface
// assertions) are exempt.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./internal/...", "."}
	}
	var dirs []string
	for _, arg := range args {
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			err := filepath.WalkDir(rest, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				dirs = append(dirs, path)
				return nil
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "missing-godoc:", err)
				os.Exit(2)
			}
			continue
		}
		dirs = append(dirs, arg)
	}
	var problems []string
	for _, dir := range dirs {
		problems = append(problems, checkDir(dir)...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("missing-godoc: %d undocumented exported identifiers/packages\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses the non-test Go files of one directory and returns one
// problem line per undocumented package or exported declaration.
func checkDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse: %v", dir, err)}
	}
	var problems []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
				break
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			problems = append(problems, checkFile(fset, name, f)...)
		}
	}
	return problems
}

// checkFile reports exported top-level declarations without doc comments.
func checkFile(fset *token.FileSet, filename string, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s has no doc comment", filename, p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				recv, exported := receiverType(d.Recv)
				if !exported {
					continue
				}
				report(d.Pos(), fmt.Sprintf("method %s.%s", recv, d.Name.Name))
				continue
			}
			report(d.Pos(), "function "+d.Name.Name)
		case *ast.GenDecl:
			if d.Doc != nil {
				// A group comment documents the whole block — the accepted
				// convention for enum-like const/var groups.
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(name.Pos(), kindName(d.Tok)+" "+name.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverType extracts the receiver's type name and whether it is exported.
func receiverType(recv *ast.FieldList) (string, bool) {
	if len(recv.List) == 0 {
		return "", false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name, tt.IsExported()
		default:
			return "", false
		}
	}
}

// kindName renders the declaration keyword for a report line.
func kindName(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return tok.String()
	}
}
