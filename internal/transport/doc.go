// Package transport defines the message-passing abstraction shared by the
// gossip, membership, and baseline protocols. The same protocol code runs
// over the deterministic simulator (internal/simnet) and over real SOAP/HTTP
// (via the soap bindings and adapters like membership.SOAPEndpoint), which
// is what makes laptop-scale reproduction of the paper's large-N claims
// faithful: only the wire moves, the protocol logic does not.
//
// Key types: Message (one one-way protocol message), Endpoint (a node's
// attachment: Send + SetHandler), Mux (action-based demultiplexer so
// several protocols share one endpoint), Handler, and Clock (the minimal
// time interface — Now + AfterFunc — that clock.Real, clock.Virtual, and
// simnet.Network all satisfy).
package transport
