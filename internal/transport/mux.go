package transport

import (
	"context"
	"fmt"
	"sync"
)

// Mux demultiplexes inbound messages to handlers by action, so several
// protocols (gossip engine, membership, application) can share one endpoint.
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	fallback Handler
}

// NewMux returns an empty mux.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]Handler)}
}

// Handle binds action to h, replacing any previous binding.
func (m *Mux) Handle(action string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[action] = h
}

// SetFallback installs the handler used for unmatched actions.
func (m *Mux) SetFallback(h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fallback = h
}

// Dispatch routes msg to the handler registered for its action.
func (m *Mux) Dispatch(ctx context.Context, msg Message) error {
	m.mu.RLock()
	h, ok := m.handlers[msg.Action]
	fb := m.fallback
	m.mu.RUnlock()
	if !ok {
		if fb != nil {
			return fb(ctx, msg)
		}
		return fmt.Errorf("transport: no handler for action %q", msg.Action)
	}
	return h(ctx, msg)
}

// Bind installs the mux as the endpoint's handler.
func (m *Mux) Bind(ep Endpoint) {
	ep.SetHandler(m.Dispatch)
}
