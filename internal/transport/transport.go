package transport

import (
	"context"
	"errors"
	"time"

	"wsgossip/internal/clock"
)

// ErrClosed reports a send through a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrUnreachable reports a send to an unknown or unreachable address.
var ErrUnreachable = errors.New("transport: unreachable")

// Message is one one-way protocol message. Request-response interactions are
// built from correlated one-way messages, which keeps the abstraction
// implementable by a single-threaded deterministic simulator.
type Message struct {
	// From is the sender address (filled in by the transport).
	From string
	// To is the destination address.
	To string
	// Action identifies the protocol operation (a URI in the SOAP binding).
	Action string
	// Body is the serialized payload.
	Body []byte
}

// Handler consumes inbound messages. Handlers may send further messages on
// the same transport from within the callback.
type Handler func(ctx context.Context, msg Message) error

// Endpoint is one node's attachment to a network: it can send one-way
// messages and receives inbound messages through its handler.
type Endpoint interface {
	// Addr returns this endpoint's address.
	Addr() string
	// Send transmits one message. Delivery is best-effort: the error only
	// reports local conditions (closed transport, unknown destination on
	// reliable fabrics), never remote processing failure.
	Send(ctx context.Context, msg Message) error
	// SetHandler installs the inbound-message handler. Must be called before
	// the first delivery.
	SetHandler(h Handler)
}

// Clock abstracts time so protocols run identically on the simulator's
// virtual clock and the wall clock. It is the minimal subset of
// clock.Clock the transport-level protocols need; clock.Real,
// clock.Virtual, and simnet.Network all satisfy it.
type Clock interface {
	// Now returns the current time as an offset from an arbitrary epoch.
	Now() time.Duration
	// AfterFunc schedules fn after d. The returned stop function cancels the
	// timer if it has not fired; it reports whether cancellation succeeded.
	AfterFunc(d time.Duration, fn func()) (stop func() bool)
}

// WallClock is the real-time Clock — clock.Real, which keeps exactly one
// wall-clock implementation in the tree.
type WallClock = clock.Real

var _ Clock = (*WallClock)(nil)

// NewWallClock returns a wall clock with its epoch at construction time.
func NewWallClock() *WallClock {
	return clock.NewReal()
}
