package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMuxDispatch(t *testing.T) {
	m := NewMux()
	var got string
	m.Handle("a", func(_ context.Context, msg Message) error {
		got = "a:" + string(msg.Body)
		return nil
	})
	m.Handle("b", func(_ context.Context, msg Message) error {
		got = "b"
		return nil
	})
	if err := m.Dispatch(context.Background(), Message{Action: "a", Body: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if got != "a:x" {
		t.Fatalf("got = %q", got)
	}
}

func TestMuxUnknownAction(t *testing.T) {
	m := NewMux()
	if err := m.Dispatch(context.Background(), Message{Action: "nope"}); err == nil {
		t.Fatal("unknown action dispatched")
	}
}

func TestMuxFallback(t *testing.T) {
	m := NewMux()
	called := false
	m.SetFallback(func(context.Context, Message) error {
		called = true
		return nil
	})
	if err := m.Dispatch(context.Background(), Message{Action: "anything"}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("fallback not called")
	}
}

func TestMuxHandlerErrorPropagates(t *testing.T) {
	m := NewMux()
	boom := errors.New("boom")
	m.Handle("x", func(context.Context, Message) error { return boom })
	if err := m.Dispatch(context.Background(), Message{Action: "x"}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestMuxReplaceBinding(t *testing.T) {
	m := NewMux()
	var got string
	m.Handle("x", func(context.Context, Message) error { got = "first"; return nil })
	m.Handle("x", func(context.Context, Message) error { got = "second"; return nil })
	_ = m.Dispatch(context.Background(), Message{Action: "x"})
	if got != "second" {
		t.Fatalf("got = %q", got)
	}
}

func TestMuxConcurrentAccess(t *testing.T) {
	m := NewMux()
	m.Handle("x", func(context.Context, Message) error { return nil })
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = m.Dispatch(context.Background(), Message{Action: "x"})
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Handle("x", func(context.Context, Message) error { return nil })
			}
		}()
	}
	wg.Wait()
}

func TestWallClockMonotone(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	// Explicit synchronization, no sleep: wait for a short timer to fire.
	fired := make(chan struct{})
	c.AfterFunc(2*time.Millisecond, func() { close(fired) })
	<-fired
	b := c.Now()
	if b <= a {
		t.Fatalf("clock not advancing: %v then %v", a, b)
	}
}

func TestWallClockAfterFunc(t *testing.T) {
	c := NewWallClock()
	fired := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("timer never fired")
	}
}

func TestWallClockAfterFuncCancel(t *testing.T) {
	c := NewWallClock()
	var fired atomic.Bool
	stop := c.AfterFunc(10*time.Millisecond, func() { fired.Store(true) })
	if !stop() {
		t.Fatal("cancel failed")
	}
	// A sentinel timer scheduled after the cancelled one bounds the wait:
	// when it fires, the cancelled timer's slot has long passed.
	sentinel := make(chan struct{})
	c.AfterFunc(30*time.Millisecond, func() { close(sentinel) })
	<-sentinel
	if fired.Load() {
		t.Fatal("cancelled timer fired")
	}
}
