// Package wsa implements the subset of WS-Addressing 1.0 used by the
// WS-Gossip middleware: endpoint references and the message-addressing
// properties (To, Action, MessageID, RelatesTo, ReplyTo) that travel in SOAP
// headers.
//
// The paper layers WS-Gossip on WS-Coordination, which in turn identifies
// its Activation and Registration services by endpoint references; every
// gossiped notification also needs a stable MessageID so that disseminators
// can deduplicate rumors.
//
// Key types: Headers (the addressing property bag, with Reply for
// request-response correlation), EPR (endpoint reference), MessageID
// (NewMessageID mints urn:uuid identifiers).
package wsa
