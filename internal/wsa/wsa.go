package wsa

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
)

// Namespace is the WS-Addressing 1.0 namespace URI.
const Namespace = "http://www.w3.org/2005/08/addressing"

// Well-known addresses defined by WS-Addressing.
const (
	// AnonymousURI marks the reply endpoint as the transport back-channel.
	AnonymousURI = Namespace + "/anonymous"
	// NoneURI marks a message that must not be replied to.
	NoneURI = Namespace + "/none"
)

// ErrMissingAddress reports an endpoint reference without an Address element.
var ErrMissingAddress = errors.New("wsa: endpoint reference has no address")

// EndpointReference identifies a web-service endpoint, optionally with
// reference parameters that the receiver echoes back in subsequent messages
// (WS-Coordination uses them to carry registration state).
type EndpointReference struct {
	XMLName             xml.Name            `xml:"http://www.w3.org/2005/08/addressing EndpointReference"`
	Address             string              `xml:"Address"`
	ReferenceParameters *ReferenceParameter `xml:"ReferenceParameters,omitempty"`
}

// ReferenceParameter holds opaque per-endpoint XML that must be echoed back.
type ReferenceParameter struct {
	Inner string `xml:",innerxml"`
}

// NewEPR returns an endpoint reference for the given address URI.
func NewEPR(address string) EndpointReference {
	return EndpointReference{Address: address}
}

// Validate checks that the endpoint reference is usable as a message target.
func (e EndpointReference) Validate() error {
	if strings.TrimSpace(e.Address) == "" {
		return ErrMissingAddress
	}
	return nil
}

// IsAnonymous reports whether the reference denotes the anonymous endpoint.
func (e EndpointReference) IsAnonymous() bool { return e.Address == AnonymousURI }

// IsNone reports whether the reference denotes the "none" endpoint.
func (e EndpointReference) IsNone() bool { return e.Address == NoneURI }

// String returns the address for logging.
func (e EndpointReference) String() string { return e.Address }

// MessageID is a WS-Addressing message identifier header value.
type MessageID string

// NewMessageID returns a fresh urn:uuid message identifier. Identifiers are
// random 128-bit values; collisions are negligible at any realistic scale.
func NewMessageID() MessageID {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable program state; fall back to a
		// zero ID rather than panicking in library code.
		return MessageID("urn:uuid:00000000000000000000000000000000")
	}
	return MessageID("urn:uuid:" + hex.EncodeToString(b[:]))
}

// Headers bundles the WS-Addressing message-addressing properties carried in
// a SOAP header block.
type Headers struct {
	To        string    `xml:"To,omitempty"`
	Action    string    `xml:"Action,omitempty"`
	MessageID MessageID `xml:"MessageID,omitempty"`
	RelatesTo MessageID `xml:"RelatesTo,omitempty"`
	ReplyTo   *EndpointReference
	From      *EndpointReference
}

// Validate checks the mandatory addressing properties for a request message.
func (h Headers) Validate() error {
	if h.Action == "" {
		return fmt.Errorf("wsa: missing Action header")
	}
	return nil
}

// Reply derives addressing headers for a reply to h with the given action.
func (h Headers) Reply(action string) Headers {
	to := AnonymousURI
	if h.ReplyTo != nil && h.ReplyTo.Address != "" {
		to = h.ReplyTo.Address
	}
	return Headers{
		To:        to,
		Action:    action,
		MessageID: NewMessageID(),
		RelatesTo: h.MessageID,
	}
}
