package wsa

import (
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEPR(t *testing.T) {
	epr := NewEPR("http://example.org/svc")
	if epr.Address != "http://example.org/svc" {
		t.Fatalf("address = %q", epr.Address)
	}
	if err := epr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestEPRValidate(t *testing.T) {
	tests := []struct {
		name    string
		epr     EndpointReference
		wantErr bool
	}{
		{name: "valid", epr: NewEPR("mem://a"), wantErr: false},
		{name: "empty", epr: EndpointReference{}, wantErr: true},
		{name: "whitespace", epr: NewEPR("   "), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.epr.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEPRXMLRoundTrip(t *testing.T) {
	in := EndpointReference{Address: "http://example.org/x"}
	data, err := xml.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(data), Namespace) {
		t.Fatalf("marshaled EPR missing namespace: %s", data)
	}
	var out EndpointReference
	if err := xml.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Address != in.Address {
		t.Fatalf("round trip address = %q, want %q", out.Address, in.Address)
	}
}

func TestWellKnownURIs(t *testing.T) {
	if !NewEPR(AnonymousURI).IsAnonymous() {
		t.Error("anonymous URI not detected")
	}
	if !NewEPR(NoneURI).IsNone() {
		t.Error("none URI not detected")
	}
	if NewEPR("http://x").IsAnonymous() || NewEPR("http://x").IsNone() {
		t.Error("plain address misclassified")
	}
}

func TestNewMessageIDUnique(t *testing.T) {
	seen := make(map[MessageID]struct{})
	for i := 0; i < 1000; i++ {
		id := NewMessageID()
		if !strings.HasPrefix(string(id), "urn:uuid:") {
			t.Fatalf("message id %q lacks urn:uuid prefix", id)
		}
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate message id %q", id)
		}
		seen[id] = struct{}{}
	}
}

func TestHeadersValidate(t *testing.T) {
	if err := (Headers{}).Validate(); err == nil {
		t.Error("missing action accepted")
	}
	if err := (Headers{Action: "urn:a"}).Validate(); err != nil {
		t.Errorf("valid headers rejected: %v", err)
	}
}

func TestHeadersReply(t *testing.T) {
	orig := Headers{
		To:        "mem://svc",
		Action:    "urn:req",
		MessageID: NewMessageID(),
	}
	t.Run("no reply-to falls back to anonymous", func(t *testing.T) {
		rep := orig.Reply("urn:resp")
		if rep.To != AnonymousURI {
			t.Fatalf("reply To = %q, want anonymous", rep.To)
		}
		if rep.RelatesTo != orig.MessageID {
			t.Fatalf("RelatesTo = %q, want %q", rep.RelatesTo, orig.MessageID)
		}
		if rep.Action != "urn:resp" {
			t.Fatalf("Action = %q", rep.Action)
		}
	})
	t.Run("explicit reply-to used", func(t *testing.T) {
		epr := NewEPR("mem://caller")
		withReply := orig
		withReply.ReplyTo = &epr
		rep := withReply.Reply("urn:resp")
		if rep.To != "mem://caller" {
			t.Fatalf("reply To = %q", rep.To)
		}
	})
	t.Run("reply ids are fresh", func(t *testing.T) {
		a := orig.Reply("urn:resp")
		b := orig.Reply("urn:resp")
		if a.MessageID == b.MessageID {
			t.Fatal("two replies share a MessageID")
		}
	})
}

func TestEPRRoundTripProperty(t *testing.T) {
	f := func(addr string) bool {
		// XML cannot carry most control characters; restrict to sane input.
		for _, r := range addr {
			if r < 0x20 || r == 0xFFFE || r == 0xFFFF {
				return true
			}
		}
		in := EndpointReference{Address: addr}
		data, err := xml.Marshal(in)
		if err != nil {
			return false
		}
		var out EndpointReference
		if err := xml.Unmarshal(data, &out); err != nil {
			return false
		}
		return out.Address == in.Address
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
