package wscoord

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
)

// Registrant records one Register call within an activity.
type Registrant struct {
	// Protocol is the registered coordination protocol identifier.
	Protocol string
	// Service is the participant's protocol service address.
	Service string
}

// Activity is one coordinated activity created through Activation.
// Context and Created are immutable after creation; the registrant list has
// its own lock because activity pointers escape to registration extensions
// and OnCreate observers that run outside the coordinator's lock.
type Activity struct {
	Context CoordinationContext
	Created time.Time

	mu          sync.Mutex
	registrants []Registrant
}

// Expired reports whether the activity's Expires window has elapsed at now.
// Activities without an Expires value never expire.
func (a *Activity) Expired(now time.Time) bool {
	if a.Context.ExpiresMillis == 0 {
		return false
	}
	deadline := a.Created.Add(time.Duration(a.Context.ExpiresMillis) * time.Millisecond)
	return !now.Before(deadline)
}

// Registrants returns a copy of the registrant list.
func (a *Activity) Registrants() []Registrant {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Registrant, len(a.registrants))
	copy(out, a.registrants)
	return out
}

// RegistrationExtension lets a protocol (WS-Gossip) enrich registration
// responses — typically with gossip parameters and peer targets. Returned
// values are marshaled as extra SOAP header blocks on the response.
type RegistrationExtension func(activity *Activity, reg Registrant) ([]any, error)

// Config configures a coordinator.
type Config struct {
	// Address is the coordinator's endpoint address; both Activation and
	// Registration are served there (dispatch is by WS-Addressing action).
	Address string
	// SupportedTypes lists the coordination type URIs this coordinator
	// accepts; empty means accept all.
	SupportedTypes []string
	// Extension, when set, runs on every successful registration.
	Extension RegistrationExtension
	// OnCreate, when set, observes every created activity (both the SOAP
	// Activation path and in-process creation).
	OnCreate func(*Activity)
	// Now supplies the time used for activity creation stamps and expiry
	// checks; nil uses time.Now. Tests and virtual-time deployments inject
	// a clock-backed source here.
	Now func() time.Time
	// DefaultExpiresMillis stamps activities created without an explicit
	// Expires value, so a long-lived coordinator paired with a pruning loop
	// (Tick) sheds abandoned interactions. 0 keeps such activities eternal
	// (the classic behaviour).
	DefaultExpiresMillis uint64
}

// Coordinator implements the WS-Coordination Activation and Registration
// services over a single endpoint.
type Coordinator struct {
	cfg   Config
	types map[string]struct{}

	mu         sync.Mutex
	activities map[string]*Activity
}

// NewCoordinator returns a coordinator with no activities.
func NewCoordinator(cfg Config) *Coordinator {
	types := make(map[string]struct{}, len(cfg.SupportedTypes))
	for _, t := range cfg.SupportedTypes {
		types[t] = struct{}{}
	}
	return &Coordinator{
		cfg:        cfg,
		types:      types,
		activities: make(map[string]*Activity),
	}
}

// now returns the coordinator's current time.
func (c *Coordinator) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// Address returns the coordinator endpoint address.
func (c *Coordinator) Address() string { return c.cfg.Address }

// RegisterActions installs the Activation and Registration handlers on a
// SOAP dispatcher.
func (c *Coordinator) RegisterActions(d *soap.Dispatcher) {
	d.Register(ActionCreate, soap.HandlerFunc(c.handleCreate))
	d.Register(ActionRegister, soap.HandlerFunc(c.handleRegister))
}

// CreateActivity creates an activity directly (in-process shortcut used by
// colocated services and tests; the SOAP path calls the same logic).
func (c *Coordinator) CreateActivity(coordType string, expires uint64) (*Activity, error) {
	if len(c.types) > 0 {
		if _, ok := c.types[coordType]; !ok {
			return nil, soap.NewFault(soap.CodeSender,
				fmt.Sprintf("unsupported coordination type %q", coordType))
		}
	}
	if expires == 0 {
		expires = c.cfg.DefaultExpiresMillis
	}
	ctx := CoordinationContext{
		Identifier:          string(wsa.NewMessageID()),
		ExpiresMillis:       expires,
		CoordinationType:    coordType,
		RegistrationService: ServiceRef{Address: c.cfg.Address},
	}
	act := &Activity{Context: ctx, Created: c.now()}
	c.mu.Lock()
	c.activities[ctx.Identifier] = act
	c.mu.Unlock()
	if c.cfg.OnCreate != nil {
		c.cfg.OnCreate(act)
	}
	return act, nil
}

// Activity returns the activity by identifier.
func (c *Coordinator) Activity(id string) (*Activity, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.activities[id]
	return a, ok
}

// ActivityIDs returns all known activity identifiers, sorted.
func (c *Coordinator) ActivityIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.activities))
	for id := range c.activities {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// AddRegistrant records a registration for the activity and returns the
// updated activity (in-process shortcut; the SOAP path calls it too).
// Registering with an expired activity fails.
func (c *Coordinator) AddRegistrant(activityID string, reg Registrant) (*Activity, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	act, ok := c.activities[activityID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownActivity, activityID)
	}
	if act.Expired(c.now()) {
		delete(c.activities, activityID)
		return nil, fmt.Errorf("%w: %s (expired)", ErrUnknownActivity, activityID)
	}
	act.mu.Lock()
	act.registrants = append(act.registrants, reg)
	act.mu.Unlock()
	return act, nil
}

// Tick runs one housekeeping round: it prunes activities whose Expires
// window has elapsed at the coordinator's injected clock. It satisfies the
// core.Runner loop shape, so a coordinator node schedules expiry pruning as
// a self-clocking round exactly like the gossip services schedule theirs.
func (c *Coordinator) Tick(context.Context) {
	c.PruneExpired(c.now())
}

// PruneExpired removes activities whose Expires window has elapsed and
// returns how many were removed. Long-lived coordinators call this
// periodically — or through Tick from a Runner loop.
func (c *Coordinator) PruneExpired(now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for id, act := range c.activities {
		if act.Expired(now) {
			delete(c.activities, id)
			removed++
		}
	}
	return removed
}

// ImportActivity installs an externally created activity (distributed
// coordinators replicate activities to each other with this).
func (c *Coordinator) ImportActivity(ctx CoordinationContext) *Activity {
	c.mu.Lock()
	defer c.mu.Unlock()
	if act, ok := c.activities[ctx.Identifier]; ok {
		return act
	}
	act := &Activity{Context: ctx, Created: c.now()}
	c.activities[ctx.Identifier] = act
	return act
}

func (c *Coordinator) handleCreate(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var body CreateCoordinationContext
	if err := req.Envelope.DecodeBody(&body); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed CreateCoordinationContext: "+err.Error())
	}
	act, err := c.CreateActivity(body.CoordinationType, body.ExpiresMillis)
	if err != nil {
		return nil, err
	}
	resp := soap.NewEnvelope()
	if err := resp.SetAddressing(req.Addressing().Reply(ActionCreateResponse)); err != nil {
		return nil, err
	}
	if err := resp.SetBody(CreateCoordinationContextResponse{CoordinationContext: act.Context}); err != nil {
		return nil, err
	}
	return resp, nil
}

func (c *Coordinator) handleRegister(_ context.Context, req *soap.Request) (*soap.Envelope, error) {
	var body Register
	if err := req.Envelope.DecodeBody(&body); err != nil {
		return nil, soap.NewFault(soap.CodeSender, "malformed Register: "+err.Error())
	}
	cctx, err := ContextFrom(req.Envelope)
	if err != nil {
		return nil, soap.NewFault(soap.CodeSender, err.Error())
	}
	reg := Registrant{
		Protocol: body.ProtocolIdentifier,
		Service:  body.ParticipantProtocolService.Address,
	}
	act, err := c.AddRegistrant(cctx.Identifier, reg)
	if err != nil {
		return nil, soap.NewFault(soap.CodeSender, err.Error())
	}
	resp := soap.NewEnvelope()
	if err := resp.SetAddressing(req.Addressing().Reply(ActionRegisterResponse)); err != nil {
		return nil, err
	}
	if err := resp.SetBody(RegisterResponse{
		CoordinatorProtocolService: ServiceRef{Address: c.cfg.Address},
	}); err != nil {
		return nil, err
	}
	if c.cfg.Extension != nil {
		extra, err := c.cfg.Extension(act, reg)
		if err != nil {
			return nil, soap.AsFault(err)
		}
		for _, block := range extra {
			if err := resp.AddHeader(block); err != nil {
				return nil, err
			}
		}
	}
	return resp, nil
}

// ActivationClient calls a remote Activation service.
type ActivationClient struct {
	caller soap.Caller
	from   string
}

// NewActivationClient returns a client sending via caller, identifying
// itself as from in addressing headers.
func NewActivationClient(caller soap.Caller, from string) *ActivationClient {
	return &ActivationClient{caller: caller, from: from}
}

// Create invokes CreateCoordinationContext at the activation address.
func (a *ActivationClient) Create(ctx context.Context, activationAddr, coordType string) (CoordinationContext, error) {
	env := soap.NewEnvelope()
	from := wsa.NewEPR(a.from)
	if err := env.SetAddressing(wsa.Headers{
		To:        activationAddr,
		Action:    ActionCreate,
		MessageID: wsa.NewMessageID(),
		ReplyTo:   &from,
	}); err != nil {
		return CoordinationContext{}, err
	}
	if err := env.SetBody(CreateCoordinationContext{CoordinationType: coordType}); err != nil {
		return CoordinationContext{}, err
	}
	resp, err := a.caller.Call(ctx, activationAddr, env)
	if err != nil {
		return CoordinationContext{}, fmt.Errorf("activation call: %w", err)
	}
	if resp == nil {
		return CoordinationContext{}, fmt.Errorf("activation call: empty response")
	}
	var body CreateCoordinationContextResponse
	if err := resp.DecodeBody(&body); err != nil {
		return CoordinationContext{}, fmt.Errorf("activation response: %w", err)
	}
	if err := body.CoordinationContext.Validate(); err != nil {
		return CoordinationContext{}, err
	}
	return body.CoordinationContext, nil
}

// RegistrationClient calls a remote Registration service.
type RegistrationClient struct {
	caller soap.Caller
	from   string
}

// NewRegistrationClient returns a client sending via caller.
func NewRegistrationClient(caller soap.Caller, from string) *RegistrationClient {
	return &RegistrationClient{caller: caller, from: from}
}

// Register invokes Register at the context's registration service and
// returns the full response envelope so callers can read extension headers.
func (r *RegistrationClient) Register(ctx context.Context, cctx CoordinationContext, protocol, participantAddr string) (*soap.Envelope, error) {
	env := soap.NewEnvelope()
	from := wsa.NewEPR(r.from)
	if err := env.SetAddressing(wsa.Headers{
		To:        cctx.RegistrationService.Address,
		Action:    ActionRegister,
		MessageID: wsa.NewMessageID(),
		ReplyTo:   &from,
	}); err != nil {
		return nil, err
	}
	if err := AttachContext(env, cctx); err != nil {
		return nil, err
	}
	if err := env.SetBody(Register{
		ProtocolIdentifier:         protocol,
		ParticipantProtocolService: ServiceRef{Address: participantAddr},
	}); err != nil {
		return nil, err
	}
	resp, err := r.caller.Call(ctx, cctx.RegistrationService.Address, env)
	if err != nil {
		return nil, fmt.Errorf("registration call: %w", err)
	}
	if resp == nil {
		return nil, fmt.Errorf("registration call: empty response")
	}
	return resp, nil
}
