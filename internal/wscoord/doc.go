// Package wscoord implements the WS-Coordination 1.1 subset WS-Gossip is
// built on (reference [1] of the paper): the Activation service
// (CreateCoordinationContext), the Registration service (Register), and the
// CoordinationContext header that ties an activity's messages together.
//
// Key types:
//
//   - Coordinator — serves both Activation and Registration on one
//     endpoint, dispatching by WS-Addressing action. A
//     RegistrationExtension hook is how the WS-Gossip layer (core's
//     Coordinator) enriches registration responses with gossip parameters
//     and peer targets.
//   - Activity / Registrant — one coordinated activity and its registered
//     participants. Activities created without an explicit expiry can be
//     stamped with Config.DefaultExpiresMillis; Tick prunes expired ones,
//     in the loop shape core.Runner schedules, so a long-lived coordinator
//     sheds abandoned interactions as a self-clocking housekeeping round.
//   - CoordinationContext — the context header; AttachContext/ContextFrom
//     move it between envelopes and values.
//   - ActivationClient / RegistrationClient — the caller side.
//
// Time is injectable (Config.Now) so activity stamps and expiry run on the
// shared virtual clock in deterministic tests.
package wscoord
