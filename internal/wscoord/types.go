package wscoord

import (
	"encoding/xml"
	"errors"
	"fmt"

	"wsgossip/internal/soap"
	"wsgossip/internal/wsa"
)

// Namespace is the WS-Coordination namespace.
const Namespace = "http://docs.oasis-open.org/ws-tx/wscoor/2006/06"

// WS-Coordination action URIs.
const (
	ActionCreate           = Namespace + "/CreateCoordinationContext"
	ActionCreateResponse   = Namespace + "/CreateCoordinationContextResponse"
	ActionRegister         = Namespace + "/Register"
	ActionRegisterResponse = Namespace + "/RegisterResponse"
)

// ErrNoContext reports a message that should carry a CoordinationContext
// header but does not.
var ErrNoContext = errors.New("wscoord: no coordination context header")

// ErrUnknownActivity reports a registration for an activity the coordinator
// does not know.
var ErrUnknownActivity = errors.New("wscoord: unknown activity")

// ServiceRef is an endpoint reference valued element (WS-Coordination names
// elements like RegistrationService with wsa:EndpointReferenceType content).
type ServiceRef struct {
	Address string `xml:"http://www.w3.org/2005/08/addressing Address"`
}

// EPR converts the reference to a wsa endpoint reference.
func (s ServiceRef) EPR() wsa.EndpointReference { return wsa.NewEPR(s.Address) }

// CoordinationContext identifies one coordinated activity. It travels as a
// SOAP header block on every message belonging to the activity.
type CoordinationContext struct {
	XMLName             xml.Name   `xml:"http://docs.oasis-open.org/ws-tx/wscoor/2006/06 CoordinationContext"`
	Identifier          string     `xml:"Identifier"`
	ExpiresMillis       uint64     `xml:"Expires,omitempty"`
	CoordinationType    string     `xml:"CoordinationType"`
	RegistrationService ServiceRef `xml:"RegistrationService"`
}

// Validate checks the mandatory context fields.
func (c CoordinationContext) Validate() error {
	if c.Identifier == "" {
		return errors.New("wscoord: context missing identifier")
	}
	if c.CoordinationType == "" {
		return errors.New("wscoord: context missing coordination type")
	}
	if c.RegistrationService.Address == "" {
		return errors.New("wscoord: context missing registration service")
	}
	return nil
}

// AttachContext adds the context as a SOAP header block, replacing any
// existing context header.
func AttachContext(env *soap.Envelope, ctx CoordinationContext) error {
	env.RemoveHeader(Namespace, "CoordinationContext")
	return env.AddHeader(ctx)
}

// ContextFrom extracts the coordination context header from the envelope.
func ContextFrom(env *soap.Envelope) (CoordinationContext, error) {
	var ctx CoordinationContext
	if err := env.DecodeHeader(Namespace, "CoordinationContext", &ctx); err != nil {
		if errors.Is(err, soap.ErrHeaderNotFound) {
			return ctx, ErrNoContext
		}
		return ctx, err
	}
	if err := ctx.Validate(); err != nil {
		return ctx, fmt.Errorf("wscoord: invalid context header: %w", err)
	}
	return ctx, nil
}

// CreateCoordinationContext is the Activation request body.
type CreateCoordinationContext struct {
	XMLName          xml.Name `xml:"http://docs.oasis-open.org/ws-tx/wscoor/2006/06 CreateCoordinationContext"`
	ExpiresMillis    uint64   `xml:"Expires,omitempty"`
	CoordinationType string   `xml:"CoordinationType"`
}

// CreateCoordinationContextResponse is the Activation response body.
type CreateCoordinationContextResponse struct {
	XMLName             xml.Name            `xml:"http://docs.oasis-open.org/ws-tx/wscoor/2006/06 CreateCoordinationContextResponse"`
	CoordinationContext CoordinationContext `xml:"CoordinationContext"`
}

// Register is the Registration request body.
type Register struct {
	XMLName                    xml.Name   `xml:"http://docs.oasis-open.org/ws-tx/wscoor/2006/06 Register"`
	ProtocolIdentifier         string     `xml:"ProtocolIdentifier"`
	ParticipantProtocolService ServiceRef `xml:"ParticipantProtocolService"`
}

// RegisterResponse is the Registration response body. Extensions (such as
// WS-Gossip's parameter block) travel as additional SOAP headers.
type RegisterResponse struct {
	XMLName                    xml.Name   `xml:"http://docs.oasis-open.org/ws-tx/wscoor/2006/06 RegisterResponse"`
	CoordinatorProtocolService ServiceRef `xml:"CoordinatorProtocolService"`
}
