package wscoord

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"wsgossip/internal/clock"
	"wsgossip/internal/soap"
)

const testType = "urn:test:coordtype"

func newTestCoordinator(ext RegistrationExtension) (*Coordinator, *soap.MemBus) {
	bus := soap.NewMemBus()
	coord := NewCoordinator(Config{
		Address:        "mem://coordinator",
		SupportedTypes: []string{testType},
		Extension:      ext,
	})
	d := soap.NewDispatcher()
	coord.RegisterActions(d)
	bus.Register("mem://coordinator", d)
	return coord, bus
}

func TestCreateActivityDirect(t *testing.T) {
	coord, _ := newTestCoordinator(nil)
	act, err := coord.CreateActivity(testType, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := act.Context.Validate(); err != nil {
		t.Fatalf("invalid context: %v", err)
	}
	if act.Context.CoordinationType != testType {
		t.Fatalf("type = %q", act.Context.CoordinationType)
	}
	if act.Context.RegistrationService.Address != "mem://coordinator" {
		t.Fatalf("registration service = %q", act.Context.RegistrationService.Address)
	}
	if _, ok := coord.Activity(act.Context.Identifier); !ok {
		t.Fatal("activity not stored")
	}
	if got := len(coord.ActivityIDs()); got != 1 {
		t.Fatalf("activity ids = %d", got)
	}
}

func TestCreateActivityUnsupportedType(t *testing.T) {
	coord, _ := newTestCoordinator(nil)
	_, err := coord.CreateActivity("urn:other", 0)
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
}

func TestActivationOverSOAP(t *testing.T) {
	_, bus := newTestCoordinator(nil)
	client := NewActivationClient(bus, "mem://app0")
	cctx, err := client.Create(context.Background(), "mem://coordinator", testType)
	if err != nil {
		t.Fatal(err)
	}
	if cctx.Identifier == "" || cctx.RegistrationService.Address != "mem://coordinator" {
		t.Fatalf("context = %+v", cctx)
	}
}

func TestActivationRejectsWrongType(t *testing.T) {
	_, bus := newTestCoordinator(nil)
	client := NewActivationClient(bus, "mem://app0")
	_, err := client.Create(context.Background(), "mem://coordinator", "urn:wrong")
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
}

func TestRegisterOverSOAP(t *testing.T) {
	coord, bus := newTestCoordinator(nil)
	act := NewActivationClient(bus, "mem://app1")
	cctx, err := act.Create(context.Background(), "mem://coordinator", testType)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistrationClient(bus, "mem://app1")
	resp, err := reg.Register(context.Background(), cctx, "urn:proto", "mem://app1")
	if err != nil {
		t.Fatal(err)
	}
	var body RegisterResponse
	if err := resp.DecodeBody(&body); err != nil {
		t.Fatal(err)
	}
	if body.CoordinatorProtocolService.Address != "mem://coordinator" {
		t.Fatalf("coordinator protocol service = %q", body.CoordinatorProtocolService.Address)
	}
	activity, ok := coord.Activity(cctx.Identifier)
	if !ok {
		t.Fatal("activity missing")
	}
	regs := activity.Registrants()
	if len(regs) != 1 || regs[0].Service != "mem://app1" || regs[0].Protocol != "urn:proto" {
		t.Fatalf("registrants = %+v", regs)
	}
}

func TestRegisterUnknownActivity(t *testing.T) {
	_, bus := newTestCoordinator(nil)
	reg := NewRegistrationClient(bus, "mem://app1")
	bogus := CoordinationContext{
		Identifier:          "urn:uuid:bogus",
		CoordinationType:    testType,
		RegistrationService: ServiceRef{Address: "mem://coordinator"},
	}
	_, err := reg.Register(context.Background(), bogus, "urn:proto", "mem://app1")
	var f *soap.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want fault", err)
	}
}

type extBlock struct {
	XMLName xml.Name `xml:"urn:test Ext"`
	Note    string   `xml:"Note"`
}

func TestRegistrationExtensionHeaders(t *testing.T) {
	ext := func(act *Activity, reg Registrant) ([]any, error) {
		return []any{extBlock{Note: "for-" + reg.Service}}, nil
	}
	_, bus := newTestCoordinator(ext)
	actc := NewActivationClient(bus, "mem://app1")
	cctx, err := actc.Create(context.Background(), "mem://coordinator", testType)
	if err != nil {
		t.Fatal(err)
	}
	regc := NewRegistrationClient(bus, "mem://app1")
	resp, err := regc.Register(context.Background(), cctx, "urn:proto", "mem://app1")
	if err != nil {
		t.Fatal(err)
	}
	var got extBlock
	if err := resp.DecodeHeader("urn:test", "Ext", &got); err != nil {
		t.Fatalf("extension header missing: %v", err)
	}
	if got.Note != "for-mem://app1" {
		t.Fatalf("note = %q", got.Note)
	}
}

func TestRegistrationExtensionError(t *testing.T) {
	ext := func(*Activity, Registrant) ([]any, error) {
		return nil, soap.NewFault(soap.CodeSender, "no capacity")
	}
	_, bus := newTestCoordinator(ext)
	actc := NewActivationClient(bus, "mem://app1")
	cctx, err := actc.Create(context.Background(), "mem://coordinator", testType)
	if err != nil {
		t.Fatal(err)
	}
	regc := NewRegistrationClient(bus, "mem://app1")
	_, err = regc.Register(context.Background(), cctx, "urn:proto", "mem://app1")
	var f *soap.Fault
	if !errors.As(err, &f) || f.Reason.Text != "no capacity" {
		t.Fatalf("err = %v", err)
	}
}

func TestContextHeaderRoundTrip(t *testing.T) {
	cctx := CoordinationContext{
		Identifier:          "urn:uuid:abc",
		CoordinationType:    testType,
		RegistrationService: ServiceRef{Address: "mem://coordinator"},
		ExpiresMillis:       5000,
	}
	env := soap.NewEnvelope()
	if err := AttachContext(env, cctx); err != nil {
		t.Fatal(err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := soap.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ContextFrom(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Identifier != cctx.Identifier || got.CoordinationType != cctx.CoordinationType ||
		got.RegistrationService.Address != cctx.RegistrationService.Address ||
		got.ExpiresMillis != 5000 {
		t.Fatalf("context round trip = %+v", got)
	}
}

func TestContextFromMissing(t *testing.T) {
	env := soap.NewEnvelope()
	if _, err := ContextFrom(env); !errors.Is(err, ErrNoContext) {
		t.Fatalf("err = %v, want ErrNoContext", err)
	}
}

func TestAttachContextReplaces(t *testing.T) {
	env := soap.NewEnvelope()
	c1 := CoordinationContext{Identifier: "urn:1", CoordinationType: testType,
		RegistrationService: ServiceRef{Address: "mem://a"}}
	c2 := CoordinationContext{Identifier: "urn:2", CoordinationType: testType,
		RegistrationService: ServiceRef{Address: "mem://b"}}
	if err := AttachContext(env, c1); err != nil {
		t.Fatal(err)
	}
	if err := AttachContext(env, c2); err != nil {
		t.Fatal(err)
	}
	got, err := ContextFrom(env)
	if err != nil {
		t.Fatal(err)
	}
	if got.Identifier != "urn:2" {
		t.Fatalf("identifier = %q", got.Identifier)
	}
}

func TestContextValidate(t *testing.T) {
	valid := CoordinationContext{
		Identifier:          "urn:1",
		CoordinationType:    testType,
		RegistrationService: ServiceRef{Address: "mem://c"},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid context rejected: %v", err)
	}
	for name, mutate := range map[string]func(*CoordinationContext){
		"no id":           func(c *CoordinationContext) { c.Identifier = "" },
		"no type":         func(c *CoordinationContext) { c.CoordinationType = "" },
		"no registration": func(c *CoordinationContext) { c.RegistrationService.Address = "" },
	} {
		c := valid
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestImportActivity(t *testing.T) {
	coord, _ := newTestCoordinator(nil)
	cctx := CoordinationContext{
		Identifier:          "urn:imported",
		CoordinationType:    testType,
		RegistrationService: ServiceRef{Address: "mem://other"},
	}
	a1 := coord.ImportActivity(cctx)
	a2 := coord.ImportActivity(cctx)
	if a1 != a2 {
		t.Fatal("import not idempotent")
	}
	if _, ok := coord.Activity("urn:imported"); !ok {
		t.Fatal("imported activity missing")
	}
}

func TestServiceRefEPR(t *testing.T) {
	ref := ServiceRef{Address: "mem://x"}
	if ref.EPR().Address != "mem://x" {
		t.Fatal("EPR conversion wrong")
	}
}

func TestActivityExpiry(t *testing.T) {
	coord, _ := newTestCoordinator(nil)
	// 1 ms expiry window.
	act, err := coord.CreateActivity(testType, 1)
	if err != nil {
		t.Fatal(err)
	}
	eternal, err := coord.CreateActivity(testType, 0)
	if err != nil {
		t.Fatal(err)
	}
	now := act.Created.Add(10 * time.Millisecond)
	if !act.Expired(now) {
		t.Fatal("activity not expired after its window")
	}
	if eternal.Expired(now.Add(time.Hour)) {
		t.Fatal("activity without Expires expired")
	}
	if removed := coord.PruneExpired(now); removed != 1 {
		t.Fatalf("pruned = %d, want 1", removed)
	}
	if _, ok := coord.Activity(act.Context.Identifier); ok {
		t.Fatal("expired activity still present")
	}
	if _, ok := coord.Activity(eternal.Context.Identifier); !ok {
		t.Fatal("eternal activity pruned")
	}
}

func TestRegisterOnExpiredActivityFails(t *testing.T) {
	coord, _ := newTestCoordinator(nil)
	act, err := coord.CreateActivity(testType, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Force the creation time into the past so the window has elapsed.
	act.Created = act.Created.Add(-time.Second)
	if _, err := coord.AddRegistrant(act.Context.Identifier, Registrant{
		Protocol: "urn:p", Service: "mem://x",
	}); !errors.Is(err, ErrUnknownActivity) {
		t.Fatalf("err = %v, want ErrUnknownActivity", err)
	}
	// The expired activity is garbage-collected on contact.
	if _, ok := coord.Activity(act.Context.Identifier); ok {
		t.Fatal("expired activity survived registration attempt")
	}
}

// TestInjectedClockExpiry drives activity expiry entirely on an injected
// virtual time source: no wall-clock dependence, no Created rewriting.
func TestInjectedClockExpiry(t *testing.T) {
	vc := clock.NewVirtual()
	epoch := time.Unix(0, 0)
	coord := NewCoordinator(Config{
		Address:        "mem://coordinator",
		SupportedTypes: []string{testType},
		Now:            func() time.Time { return epoch.Add(vc.Now()) },
	})
	act, err := coord.CreateActivity(testType, 50) // 50 ms window
	if err != nil {
		t.Fatal(err)
	}
	if !act.Created.Equal(epoch) {
		t.Fatalf("created stamp %v, want epoch", act.Created)
	}
	vc.Advance(40 * time.Millisecond)
	if _, err := coord.AddRegistrant(act.Context.Identifier, Registrant{
		Protocol: "urn:p", Service: "mem://a",
	}); err != nil {
		t.Fatalf("register inside window: %v", err)
	}
	vc.Advance(20 * time.Millisecond) // 60 ms > 50 ms window
	if _, err := coord.AddRegistrant(act.Context.Identifier, Registrant{
		Protocol: "urn:p", Service: "mem://b",
	}); !errors.Is(err, ErrUnknownActivity) {
		t.Fatalf("err = %v, want ErrUnknownActivity after virtual expiry", err)
	}
}

// TestConcurrentRegistrantsRace hammers AddRegistrant against Registrants
// readers — the activity pointer escapes to extensions and observers, so
// the list needs its own synchronization (run under -race).
func TestConcurrentRegistrantsRace(t *testing.T) {
	coord, _ := newTestCoordinator(nil)
	act, err := coord.CreateActivity(testType, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := coord.AddRegistrant(act.Context.Identifier, Registrant{
					Protocol: "urn:p",
					Service:  fmt.Sprintf("mem://svc-%d-%d", g, i),
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = act.Registrants()
			}
		}()
	}
	wg.Wait()
	if got := len(act.Registrants()); got != 800 {
		t.Fatalf("registrants = %d, want 800", got)
	}
}
