package wsn

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"wsgossip/internal/transport"
)

// Wire actions.
const (
	ActionSubscribe = "urn:wsgossip:wsn:subscribe"
	ActionPublish   = "urn:wsgossip:wsn:publish"
	ActionNotify    = "urn:wsgossip:wsn:notify"
)

// Notification is the payload delivered to subscribers.
type Notification struct {
	ID      string `json:"id"`
	Payload []byte `json:"payload,omitempty"`
}

type subscribeMsg struct {
	Endpoint string `json:"endpoint"`
}

// BrokerStats counts broker activity.
type BrokerStats struct {
	Published     int64
	NotifiesSent  int64
	Subscriptions int64
}

// Broker is the centralized notification service.
type Broker struct {
	ep transport.Endpoint

	mu    sync.Mutex
	subs  map[string]struct{}
	stats BrokerStats
}

// NewBroker attaches a broker to the endpoint.
func NewBroker(ep transport.Endpoint) *Broker {
	return &Broker{ep: ep, subs: make(map[string]struct{})}
}

// Register installs the broker's wire actions on the mux.
func (b *Broker) Register(mux *transport.Mux) {
	mux.Handle(ActionSubscribe, b.handleSubscribe)
	mux.Handle(ActionPublish, b.handlePublish)
}

// Addr returns the broker's address.
func (b *Broker) Addr() string { return b.ep.Addr() }

// Stats returns a copy of the counters.
func (b *Broker) Stats() BrokerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Subscribers returns the sorted subscriber list.
func (b *Broker) Subscribers() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.subs))
	for s := range b.subs {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SubscribeLocal adds a subscriber without a network round-trip.
func (b *Broker) SubscribeLocal(endpoint string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[endpoint]; !ok {
		b.subs[endpoint] = struct{}{}
		b.stats.Subscriptions++
	}
}

func (b *Broker) handleSubscribe(_ context.Context, msg transport.Message) error {
	var sm subscribeMsg
	if err := json.Unmarshal(msg.Body, &sm); err != nil {
		return fmt.Errorf("wsn: decode subscribe: %w", err)
	}
	if sm.Endpoint == "" {
		return errors.New("wsn: subscribe with empty endpoint")
	}
	b.SubscribeLocal(sm.Endpoint)
	return nil
}

// Publish fans the notification out to every subscriber, sequentially, as a
// WS-Notification broker would. Send errors are counted by the fabric; the
// broker has no retry logic (matching the paper's framing of brittle
// centralized dissemination).
func (b *Broker) Publish(ctx context.Context, n Notification) error {
	body, err := json.Marshal(n)
	if err != nil {
		return fmt.Errorf("wsn: encode notification: %w", err)
	}
	b.mu.Lock()
	targets := make([]string, 0, len(b.subs))
	for s := range b.subs {
		targets = append(targets, s)
	}
	sort.Strings(targets)
	b.stats.Published++
	b.stats.NotifiesSent += int64(len(targets))
	b.mu.Unlock()
	for _, t := range targets {
		_ = b.ep.Send(ctx, transport.Message{To: t, Action: ActionNotify, Body: body})
	}
	return nil
}

func (b *Broker) handlePublish(ctx context.Context, msg transport.Message) error {
	var n Notification
	if err := json.Unmarshal(msg.Body, &n); err != nil {
		return fmt.Errorf("wsn: decode publish: %w", err)
	}
	return b.Publish(ctx, n)
}

// Consumer is a broker subscriber that records delivered notification IDs.
type Consumer struct {
	ep transport.Endpoint

	mu       sync.Mutex
	received map[string]struct{}
	deliver  func(Notification)
}

// NewConsumer attaches a consumer to the endpoint.
func NewConsumer(ep transport.Endpoint) *Consumer {
	return &Consumer{ep: ep, received: make(map[string]struct{})}
}

// Register installs the notify action on the mux.
func (c *Consumer) Register(mux *transport.Mux) {
	mux.Handle(ActionNotify, c.handleNotify)
}

// SetDeliver installs an optional delivery callback.
func (c *Consumer) SetDeliver(fn func(Notification)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deliver = fn
}

// Addr returns the consumer's address.
func (c *Consumer) Addr() string { return c.ep.Addr() }

// Subscribe sends a subscription to the broker.
func (c *Consumer) Subscribe(ctx context.Context, broker string) error {
	body, err := json.Marshal(subscribeMsg{Endpoint: c.ep.Addr()})
	if err != nil {
		return err
	}
	return c.ep.Send(ctx, transport.Message{To: broker, Action: ActionSubscribe, Body: body})
}

func (c *Consumer) handleNotify(_ context.Context, msg transport.Message) error {
	var n Notification
	if err := json.Unmarshal(msg.Body, &n); err != nil {
		return fmt.Errorf("wsn: decode notify: %w", err)
	}
	c.mu.Lock()
	_, dup := c.received[n.ID]
	if !dup {
		c.received[n.ID] = struct{}{}
	}
	deliver := c.deliver
	c.mu.Unlock()
	if !dup && deliver != nil {
		deliver(n)
	}
	return nil
}

// ReceivedCount returns the number of unique notifications delivered.
func (c *Consumer) ReceivedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.received)
}

// Has reports whether the notification ID was delivered.
func (c *Consumer) Has(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.received[id]
	return ok
}
