package wsn

import (
	"context"
	"fmt"
	"testing"

	"wsgossip/internal/simnet"
	"wsgossip/internal/transport"
)

type wsnCluster struct {
	net       *simnet.Network
	broker    *Broker
	consumers []*Consumer
}

func newWsnCluster(t *testing.T, consumers int, seed int64) *wsnCluster {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(seed))
	broker := NewBroker(net.Node("broker"))
	bmux := transport.NewMux()
	broker.Register(bmux)
	bmux.Bind(net.Node("broker"))
	c := &wsnCluster{net: net, broker: broker}
	for i := 0; i < consumers; i++ {
		addr := fmt.Sprintf("c%03d", i)
		cons := NewConsumer(net.Node(addr))
		mux := transport.NewMux()
		cons.Register(mux)
		mux.Bind(net.Node(addr))
		c.consumers = append(c.consumers, cons)
	}
	return c
}

func TestSubscribeAndPublish(t *testing.T) {
	c := newWsnCluster(t, 8, 1)
	ctx := context.Background()
	for _, cons := range c.consumers {
		if err := cons.Subscribe(ctx, "broker"); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Run()
	if got := len(c.broker.Subscribers()); got != 8 {
		t.Fatalf("subscribers = %d", got)
	}
	if err := c.broker.Publish(ctx, Notification{ID: "n1", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	for i, cons := range c.consumers {
		if !cons.Has("n1") {
			t.Fatalf("consumer %d missed n1", i)
		}
		if cons.ReceivedCount() != 1 {
			t.Fatalf("consumer %d received %d", i, cons.ReceivedCount())
		}
	}
	st := c.broker.Stats()
	if st.Published != 1 || st.NotifiesSent != 8 {
		t.Fatalf("broker stats = %+v", st)
	}
}

func TestSubscribeIdempotent(t *testing.T) {
	c := newWsnCluster(t, 1, 2)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := c.consumers[0].Subscribe(ctx, "broker"); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Run()
	if got := len(c.broker.Subscribers()); got != 1 {
		t.Fatalf("subscribers = %d", got)
	}
	if st := c.broker.Stats(); st.Subscriptions != 1 {
		t.Fatalf("subscription count = %d", st.Subscriptions)
	}
}

func TestPublishViaWire(t *testing.T) {
	c := newWsnCluster(t, 4, 3)
	ctx := context.Background()
	for _, cons := range c.consumers {
		_ = cons.Subscribe(ctx, "broker")
	}
	c.net.Run()
	// A producer node publishes through the wire action rather than the
	// local method.
	producer := c.net.Node("producer")
	body := []byte(`{"id":"wire-1","payload":"aGk="}`)
	if err := producer.Send(ctx, transport.Message{To: "broker", Action: ActionPublish, Body: body}); err != nil {
		t.Fatal(err)
	}
	c.net.Run()
	for i, cons := range c.consumers {
		if !cons.Has("wire-1") {
			t.Fatalf("consumer %d missed wire publish", i)
		}
	}
}

func TestDuplicateNotifyCountedOnce(t *testing.T) {
	c := newWsnCluster(t, 1, 4)
	ctx := context.Background()
	_ = c.consumers[0].Subscribe(ctx, "broker")
	c.net.Run()
	deliveries := 0
	c.consumers[0].SetDeliver(func(Notification) { deliveries++ })
	for i := 0; i < 3; i++ {
		_ = c.broker.Publish(ctx, Notification{ID: "same"})
	}
	c.net.Run()
	if c.consumers[0].ReceivedCount() != 1 {
		t.Fatalf("received = %d", c.consumers[0].ReceivedCount())
	}
	if deliveries != 1 {
		t.Fatalf("deliver callback ran %d times", deliveries)
	}
}

func TestBrokerLossLosesNotifications(t *testing.T) {
	// The brittleness the paper contrasts against: a lossy link between the
	// broker and a subscriber silently loses the event — there is no
	// redundancy and no repair.
	c := newWsnCluster(t, 50, 5)
	ctx := context.Background()
	for _, cons := range c.consumers {
		_ = cons.Subscribe(ctx, "broker")
	}
	c.net.Run()
	c.net.SetLossRate(0.3)
	_ = c.broker.Publish(ctx, Notification{ID: "frail"})
	c.net.Run()
	missed := 0
	for _, cons := range c.consumers {
		if !cons.Has("frail") {
			missed++
		}
	}
	if missed == 0 {
		t.Fatal("no notifications lost under 30% loss; baseline should be brittle")
	}
}

func TestBrokerCrashStopsDissemination(t *testing.T) {
	c := newWsnCluster(t, 5, 6)
	ctx := context.Background()
	for _, cons := range c.consumers {
		_ = cons.Subscribe(ctx, "broker")
	}
	c.net.Run()
	c.net.Crash("broker")
	producer := c.net.Node("producer")
	_ = producer.Send(ctx, transport.Message{To: "broker", Action: ActionPublish, Body: []byte(`{"id":"dead"}`)})
	c.net.Run()
	for i, cons := range c.consumers {
		if cons.Has("dead") {
			t.Fatalf("consumer %d received through a crashed broker", i)
		}
	}
}

func TestSubscribeLocalMatchesWire(t *testing.T) {
	c := newWsnCluster(t, 0, 7)
	c.broker.SubscribeLocal("direct")
	if got := c.broker.Subscribers(); len(got) != 1 || got[0] != "direct" {
		t.Fatalf("subscribers = %v", got)
	}
}
