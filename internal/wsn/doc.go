// Package wsn implements a WS-Notification-style centralized broker
// (reference [7] of the paper): producers publish to the broker, the broker
// sequentially notifies every subscriber. It is the non-gossip baseline the
// paper positions WS-Gossip against — a single point of failure whose
// per-event work grows linearly with the subscriber count.
//
// The broker runs over the same transport abstraction as the gossip engine
// so resilience and load experiments (E3, E5) compare like with like.
//
// Key types: Broker (subscription list + sequential notify fan-out) and its
// Stats.
package wsn
