// Package wsgossip is the public API of the WS-Gossip middleware, a
// reproduction of "WS-Gossip: Middleware for Scalable Service Coordination"
// (Campos & Pereira, Middleware '08 Companion).
//
// WS-Gossip leverages gossip (epidemic) protocols as a high-level
// structuring paradigm for coordinating very large numbers of web services.
// It is layered on WS-Coordination: an Initiator activates a gossip
// coordination context and issues a single notification; Disseminators —
// whose application code is untouched — run a gossip handler in their
// middleware stack that registers with the coordination activity on first
// contact and re-routes copies of the notification to peers selected by the
// Coordinator; Consumers are completely unchanged.
//
// The four roles of the paper's Figure 1:
//
//	coordinator := wsgossip.NewCoordinator(wsgossip.CoordinatorConfig{Address: "mem://coordinator"})
//	initiator, _ := wsgossip.NewInitiator(wsgossip.InitiatorConfig{
//	    Address: "mem://app0b", Caller: bus, Activation: "mem://coordinator",
//	})
//	disseminator, _ := wsgossip.NewDisseminator(wsgossip.DisseminatorConfig{
//	    Address: "mem://app1", Caller: bus, App: myService,
//	})
//	consumer := wsgossip.NewConsumer(myUnchangedService)
//
// Bindings: soap.MemBus for in-process deployments, soap.HTTPServer and
// soap.HTTPClient for SOAP 1.2 over HTTP. The gossip engine, the simulated
// network, and the experiment harness live under internal/ and are exercised
// by cmd/wsgossip-bench.
package wsgossip

import (
	"context"

	"wsgossip/internal/aggregate"
	"wsgossip/internal/core"
	"wsgossip/internal/delivery"
	"wsgossip/internal/epidemic"
	"wsgossip/internal/faults"
	"wsgossip/internal/membership"
	"wsgossip/internal/probe"
	"wsgossip/internal/soap"
)

// Role and protocol identifiers re-exported from the framework core.
const (
	// CoordinationTypeGossip is the WS-Gossip coordination type URI.
	CoordinationTypeGossip = core.CoordinationTypeGossip
	// ProtocolPushGossip is the WS-PushGossip coordination protocol URI.
	ProtocolPushGossip = core.ProtocolPushGossip
	// ProtocolPullGossip is the WS-PullGossip coordination protocol URI.
	ProtocolPullGossip = core.ProtocolPullGossip
	// ProtocolAggregate is the gossip aggregation coordination protocol URI.
	ProtocolAggregate = core.ProtocolAggregate
	// ActionNotify is the disseminated operation's WS-Addressing action.
	ActionNotify = core.ActionNotify
	// RoleDisseminator marks a subscriber with a compliant middleware stack.
	RoleDisseminator = core.RoleDisseminator
	// RoleConsumer marks an unchanged subscriber.
	RoleConsumer = core.RoleConsumer
)

// Aggregate functions a Querier can ask for.
const (
	FuncCount = aggregate.FuncCount
	FuncSum   = aggregate.FuncSum
	FuncAvg   = aggregate.FuncAvg
	FuncMin   = aggregate.FuncMin
	FuncMax   = aggregate.FuncMax
)

// Core role types.
type (
	// Coordinator hosts Activation, Registration, and the subscription list.
	Coordinator = core.Coordinator
	// CoordinatorConfig configures a Coordinator.
	CoordinatorConfig = core.CoordinatorConfig
	// CoordinatorStats counts coordinator activity.
	CoordinatorStats = core.CoordinatorStats
	// ParamPolicy maps subscriber count to (fanout, hops).
	ParamPolicy = core.ParamPolicy
	// Initiator starts gossip interactions and issues notifications.
	Initiator = core.Initiator
	// InitiatorConfig configures an Initiator.
	InitiatorConfig = core.InitiatorConfig
	// Interaction is an activated gossip dissemination.
	Interaction = core.Interaction
	// Disseminator wraps an application service with the gossip layer.
	Disseminator = core.Disseminator
	// DisseminatorConfig configures a Disseminator.
	DisseminatorConfig = core.DisseminatorConfig
	// DisseminatorStats counts gossip-layer activity.
	DisseminatorStats = core.DisseminatorStats
	// Consumer is the unchanged subscriber role.
	Consumer = core.Consumer
	// Subscription is one subscriber record at the Coordinator.
	Subscription = core.Subscription
	// GossipHeader is the per-notification gossip SOAP header.
	GossipHeader = core.GossipHeader
	// GossipParameters is the registration-response parameter extension.
	GossipParameters = core.GossipParameters
	// AggregateParameters is the aggregation registration extension.
	AggregateParameters = core.AggregateParameters
	// ProtocolRegistry maps protocol URIs to registration extensions.
	ProtocolRegistry = core.ProtocolRegistry
	// Runner owns a node's self-clocking protocol rounds — pull,
	// anti-entropy repair, deferred lazy-push announcements, push-sum
	// exchanges, membership view exchanges — on a pluggable clock
	// (internal/clock): the wall clock in production, a deterministic
	// virtual clock in tests and simulations. With
	// RunnerConfig.QuiescentMax set the pull/repair/aggregate rounds back
	// off exponentially while the node is idle and snap back on traffic.
	Runner = core.Runner
	// RunnerConfig configures a Runner.
	RunnerConfig = core.RunnerConfig
	// RunnerLoop is one custom periodic round a Runner can own.
	RunnerLoop = core.Loop
	// PeerView supplies gossip fan-out targets at sample time. Install one
	// (DisseminatorConfig.Peers, AggregateServiceConfig.Peers,
	// InitiatorConfig.Peers) to sample the live overlay instead of the
	// coordinator's frozen target lists; MembershipService implements it.
	PeerView = core.PeerView
)

// Live membership layer (internal/membership): a gossip-maintained peer
// view with heartbeat failure detection, usable as the PeerView behind
// every fan-out.
type (
	// MembershipService is one node's membership protocol instance.
	MembershipService = membership.Service
	// MembershipConfig configures a MembershipService.
	MembershipConfig = membership.Config
	// MembershipSOAPEndpoint carries membership exchanges over the node's
	// SOAP binding so the view shares the fabric with the gossip services.
	MembershipSOAPEndpoint = membership.SOAPEndpoint
	// Member is one entry in a membership view.
	Member = membership.Member
)

// NewMembershipService returns a membership service.
func NewMembershipService(cfg MembershipConfig) (*MembershipService, error) {
	return membership.New(cfg)
}

// NewMembershipSOAPEndpoint returns a SOAP-carried membership endpoint for
// addr sending through caller.
func NewMembershipSOAPEndpoint(addr string, caller soap.Caller) *MembershipSOAPEndpoint {
	return membership.NewSOAPEndpoint(addr, caller)
}

// NewRunner returns a self-clocking round engine for a node's periodic
// gossip loops.
func NewRunner(cfg RunnerConfig) (*Runner, error) { return core.NewRunner(cfg) }

// Failure-aware delivery layer (internal/delivery): a plane of per-peer
// outbound queues with retry/backoff and circuit breaking that slots
// between any role and its binding, plus a token-bucket admission gate
// for the inbound path. Wrap the node's Caller in a DeliveryPlane and
// every fan-out inherits the failure handling; wrap its dispatcher in an
// AdmissionGate middleware and overload is shed with retry-after hints
// the senders' planes honor.
type (
	// DeliveryPlane is the failure-aware outbound plane. It implements the
	// same Caller contract as the bindings, so it is installed by wrapping:
	// DisseminatorConfig.Caller = plane. Use its FilterView to make peer
	// sampling skip open-circuit targets.
	DeliveryPlane = delivery.Plane
	// DeliveryConfig configures a DeliveryPlane.
	DeliveryConfig = delivery.Config
	// DeliveryPeerState is one peer's queue/breaker snapshot.
	DeliveryPeerState = delivery.PeerState
	// DeliveryStats aggregates a plane's live state across peers.
	DeliveryStats = delivery.Stats
	// AdmissionGate is the inbound token-bucket overload gate.
	AdmissionGate = delivery.Gate
	// AdmissionGateConfig configures an AdmissionGate.
	AdmissionGateConfig = delivery.GateConfig
)

// Delivery-plane fast-failure sentinels: a Send returning one of these
// means the plane refused responsibility and epidemic redundancy should
// route around the peer.
var (
	// ErrDeliveryQueueFull reports a peer whose bounded queue is at capacity.
	ErrDeliveryQueueFull = delivery.ErrQueueFull
	// ErrDeliveryCircuitOpen reports a peer whose circuit is open.
	ErrDeliveryCircuitOpen = delivery.ErrCircuitOpen
	// ErrDeliveryBudgetExhausted reports a message that spent its attempt
	// budget without landing.
	ErrDeliveryBudgetExhausted = delivery.ErrBudgetExhausted
)

// NewDeliveryPlane returns a failure-aware outbound delivery plane over
// cfg.Caller.
func NewDeliveryPlane(cfg DeliveryConfig) *DeliveryPlane { return delivery.NewPlane(cfg) }

// NewAdmissionGate returns an inbound admission gate; install it with
// soap.Chain(handler, gate.Middleware()).
func NewAdmissionGate(cfg AdmissionGateConfig) *AdmissionGate { return delivery.NewGate(cfg) }

// Asymmetric-failure tolerance (internal/probe, internal/faults). A
// Prober adjudicates opened circuits before they become suspicions: it
// asks K peers to reach the suspect indirectly (SWIM-style ping-req), and
// a positive indirect ack averts the suspicion, marking the link
// asymmetric-degraded instead of the peer dead. Wire it between a
// DeliveryPlane and a MembershipService: DeliveryConfig.OnPeerDown =
// prober.Confirm, ProberConfig.OnDown = membership.Suspect,
// DeliveryConfig.OnPeerUp = prober.ClearDegraded. A FaultTable and a
// FaultPlan inject the directional link faults (one-way cuts,
// connection-refused links, NAT'd nodes, per-link loss and delay) that
// make such probers necessary, replayable as a timed script.
type (
	// Prober confirms suspected peers through indirect paths.
	Prober = probe.Prober
	// ProberConfig configures a Prober.
	ProberConfig = probe.Config
	// ProberStats is a point-in-time snapshot of a Prober's verdicts.
	ProberStats = probe.Stats
	// FaultTable is a directional link-fault rule set consulted per send.
	FaultTable = faults.Table
	// FaultPlan is a declarative timeline of fault events.
	FaultPlan = faults.Plan
	// FaultApplier binds a FaultPlan to the fabric it drives.
	FaultApplier = faults.Applier
)

// NewProber returns an indirect-reachability prober; register its SOAP
// actions on the node's dispatcher with Prober.RegisterActions.
func NewProber(cfg ProberConfig) *Prober { return probe.New(cfg) }

// NewFaultTable returns an empty fault table.
func NewFaultTable() *FaultTable { return faults.NewTable() }

// ParseFaultPlan reads a fault plan from its textual form (see
// internal/faults.ParsePlan for the grammar).
func ParseFaultPlan(src string) (*FaultPlan, error) { return faults.ParsePlan(src) }

// Aggregation subsystem types (internal/aggregate).
type (
	// AggregateFunc identifies the aggregate function an interaction
	// computes (FuncCount, FuncSum, FuncAvg, FuncMin, FuncMax).
	AggregateFunc = aggregate.Func
	// AggregateService is the aggregation participant role.
	AggregateService = aggregate.Service
	// AggregateServiceConfig configures an AggregateService.
	AggregateServiceConfig = aggregate.ServiceConfig
	// AggregateServiceStats counts aggregation activity at one node.
	AggregateServiceStats = aggregate.ServiceStats
	// Querier activates aggregation interactions and collects converged
	// estimates.
	Querier = aggregate.Querier
	// QuerierConfig configures a Querier.
	QuerierConfig = aggregate.QuerierConfig
	// AggregationTask is one activated aggregation interaction.
	AggregationTask = aggregate.Task
	// AggregateQueryResult is a peer's answer to an estimate query.
	AggregateQueryResult = aggregate.QueryResult
	// ContinuousQuery declares one cluster quantity an AggregateWindow
	// keeps fresh (a metric name plus the aggregate function over it).
	ContinuousQuery = aggregate.ContinuousQuery
	// AggregateWindow is the continuous-query controller: it restarts
	// push-sum every window on the shared clock so estimates track churn.
	AggregateWindow = aggregate.Window
	// AggregateWindowConfig configures an AggregateWindow.
	AggregateWindowConfig = aggregate.WindowConfig
	// ClusterEstimate is one continuous query's health view: the last
	// closed epoch's stable estimate plus the still-mixing live one.
	ClusterEstimate = aggregate.ClusterEstimate
)

// NewAggregateService returns an aggregation participant.
func NewAggregateService(cfg AggregateServiceConfig) (*AggregateService, error) {
	return aggregate.NewService(cfg)
}

// NewQuerier returns an aggregation Querier.
func NewQuerier(cfg QuerierConfig) (*Querier, error) { return aggregate.NewQuerier(cfg) }

// NewAggregateWindow returns a continuous-query controller driving the
// configured queries as epoch-windowed aggregations.
func NewAggregateWindow(cfg AggregateWindowConfig) (*AggregateWindow, error) {
	return aggregate.NewWindow(cfg)
}

// NewCoordinator returns a WS-Gossip Coordinator.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator { return core.NewCoordinator(cfg) }

// NewInitiator returns an Initiator.
func NewInitiator(cfg InitiatorConfig) (*Initiator, error) { return core.NewInitiator(cfg) }

// NewDisseminator returns a Disseminator.
func NewDisseminator(cfg DisseminatorConfig) (*Disseminator, error) {
	return core.NewDisseminator(cfg)
}

// NewConsumer wraps an unchanged application service as a Consumer.
func NewConsumer(app soap.Handler) *Consumer { return core.NewConsumer(app) }

// Subscribe registers endpoint with the Coordinator at coordinator, in the
// given role (RoleDisseminator or RoleConsumer). protocols lists the
// coordination protocol URIs the endpoint's stack serves (e.g.
// ProtocolAggregate); none means every protocol.
func Subscribe(ctx context.Context, caller soap.Caller, coordinator, endpoint, role string, protocols ...string) error {
	return core.SubscribeClient(ctx, caller, coordinator, endpoint, role, protocols...)
}

// DefaultParamPolicy is the standard epidemic sizing: fanout 3, hops
// ceil(log2 n)+2.
func DefaultParamPolicy(subscribers int) (fanout, hops int) {
	return core.DefaultParamPolicy(subscribers)
}

// RoundsForCoverage returns the number of gossip rounds needed for the
// target expected coverage at fanout f over n nodes (capped at maxRounds),
// from the analytic epidemic model.
func RoundsForCoverage(n, f int, target float64, maxRounds int) (int, error) {
	return epidemic.RoundsForCoverage(n, f, target, maxRounds)
}

// ExpectedCoverage returns the analytic expected delivery fraction for
// infect-and-die push gossip with fanout f after r rounds over n nodes.
func ExpectedCoverage(n, f, r int) (float64, error) {
	return epidemic.ExpectedCoverage(n, f, r)
}

// PushSumRoundsToEpsilon returns the analytic number of push-sum exchange
// rounds for aggregation estimates to decay to relative accuracy eps over n
// nodes at fanout f.
func PushSumRoundsToEpsilon(n, f int, eps float64) (int, error) {
	return epidemic.PushSumRoundsToEpsilon(n, f, eps)
}

// PushSumContraction returns the expected per-round contraction factor of
// the push-sum potential for n nodes at fanout f.
func PushSumContraction(n, f int) (float64, error) {
	return epidemic.PushSumContraction(n, f)
}
